// Tests for the identity and Start-Gap wear levelers plus the permutation
// invariants every leveler must uphold.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "wearlevel/none.h"
#include "wearlevel/start_gap.h"
#include "wearlevel/wear_leveler.h"

namespace nvmsec {
namespace {

// Drive `wl` with `writes` sequential user writes and verify the mapping
// stays a bijection throughout. Returns per-working-index write counts.
std::vector<int> drive_and_check(WearLeveler& wl, int writes, Rng& rng) {
  std::vector<int> counts(wl.working_lines(), 0);
  std::vector<WlPhysWrite> batch;
  std::uint64_t la = 0;
  for (int i = 0; i < writes; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{la}, rng, batch);
    la = (la + 1) % wl.logical_lines();
    EXPECT_FALSE(batch.empty());
    EXPECT_FALSE(batch.back().is_overhead);  // user write comes last
    for (const auto& w : batch) {
      EXPECT_LT(w.working_index, wl.working_lines());
      ++counts[w.working_index];
    }
    // Bijection check (on a sample of iterations to keep the test fast).
    if (i % 97 == 0) {
      std::set<std::uint64_t> targets;
      for (std::uint64_t l = 0; l < wl.logical_lines(); ++l) {
        targets.insert(wl.translate(LogicalLineAddr{l}));
      }
      EXPECT_EQ(targets.size(), wl.logical_lines());
    }
  }
  return counts;
}

TEST(NoWearLevelingTest, IdentityMapping) {
  NoWearLeveling wl(32);
  Rng rng(1);
  EXPECT_EQ(wl.logical_lines(), 32u);
  EXPECT_EQ(wl.working_lines(), 32u);
  for (std::uint64_t l = 0; l < 32; ++l) {
    EXPECT_EQ(wl.translate(LogicalLineAddr{l}), l);
  }
  std::vector<WlPhysWrite> batch;
  wl.on_write(LogicalLineAddr{5}, rng, batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].working_index, 5u);
  EXPECT_FALSE(batch[0].is_overhead);
  EXPECT_EQ(wl.overhead_writes(), 0u);
}

TEST(NoWearLevelingTest, TranslateOutOfRangeThrows) {
  NoWearLeveling wl(8);
  EXPECT_THROW(wl.translate(LogicalLineAddr{8}), std::out_of_range);
}

TEST(NoWearLevelingTest, EmptyOrHugeWorkingSetRejected) {
  EXPECT_THROW(NoWearLeveling(0), std::invalid_argument);
}

TEST(StartGapTest, Construction) {
  EXPECT_THROW(StartGap(1, 10), std::invalid_argument);
  EXPECT_THROW(StartGap(16, 0), std::invalid_argument);
  StartGap wl(16, 4);
  EXPECT_EQ(wl.logical_lines(), 15u);  // one slot is the gap
  EXPECT_EQ(wl.working_lines(), 16u);
  EXPECT_EQ(wl.gap_slot(), 15u);
}

TEST(StartGapTest, GapMovesEveryPsiWrites) {
  StartGap wl(16, 4);
  Rng rng(1);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 3; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
    EXPECT_EQ(batch.size(), 1u);  // no movement yet
  }
  batch.clear();
  wl.on_write(LogicalLineAddr{0}, rng, batch);  // 4th write: gap moves
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].is_overhead);
  EXPECT_EQ(batch[0].working_index, 15u);  // migration into the old gap
  EXPECT_EQ(wl.gap_slot(), 14u);
  EXPECT_EQ(wl.overhead_writes(), 1u);
}

TEST(StartGapTest, GapNeverServesUserWrites) {
  StartGap wl(16, 2);
  Rng rng(1);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 200; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{static_cast<std::uint64_t>(i) % 15}, rng,
                batch);
    EXPECT_NE(batch.back().working_index, wl.gap_slot());
  }
}

TEST(StartGapTest, FullRotationShiftsEveryLine) {
  // After working_lines gap moves the gap returns to its start slot and the
  // data layout has rotated by one.
  StartGap wl(8, 1);  // move every write
  Rng rng(1);
  const std::vector<std::uint64_t> before = [&] {
    std::vector<std::uint64_t> v;
    for (std::uint64_t l = 0; l < 7; ++l) {
      v.push_back(wl.translate(LogicalLineAddr{l}));
    }
    return v;
  }();
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 8; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
  }
  EXPECT_EQ(wl.gap_slot(), 7u);  // full cycle
  int moved = 0;
  for (std::uint64_t l = 0; l < 7; ++l) {
    if (wl.translate(LogicalLineAddr{l}) != before[l]) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(StartGapTest, StaysBijectiveUnderLoad) {
  StartGap wl(64, 3);
  Rng rng(2);
  drive_and_check(wl, 2000, rng);
}

TEST(StartGapTest, ResetRestoresIdentityAndGap) {
  StartGap wl(16, 1);
  Rng rng(1);
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 10; ++i) {
    batch.clear();
    wl.on_write(LogicalLineAddr{0}, rng, batch);
  }
  wl.reset();
  EXPECT_EQ(wl.gap_slot(), 15u);
  EXPECT_EQ(wl.overhead_writes(), 0u);
  for (std::uint64_t l = 0; l < 15; ++l) {
    EXPECT_EQ(wl.translate(LogicalLineAddr{l}), l);
  }
}

TEST(FactoryTest, AllSchemesConstructAndRun) {
  Rng rng(3);
  WearLevelerParams params;
  params.swap_interval = 5;
  params.tlsr_subregion_lines = 16;
  EnduranceView view(64);
  for (std::size_t i = 0; i < 64; ++i) {
    view[i] = 100.0 + static_cast<double>(i);
  }
  for (const std::string name :
       {"none", "startgap", "tlsr", "pcms", "bwl", "wawl"}) {
    auto wl = make_wear_leveler(name, 64, view, params, rng);
    ASSERT_NE(wl, nullptr) << name;
    EXPECT_EQ(wl->name(), name);
    drive_and_check(*wl, 500, rng);
  }
  EXPECT_THROW(make_wear_leveler("bogus", 64, view, params, rng),
               std::invalid_argument);
}

TEST(BatchHorizonTest, IdentityLevelerNeverRemaps) {
  NoWearLeveling wl(32);
  EXPECT_EQ(wl.writes_until_remap(), WearLeveler::kNeverRemaps);
  const std::uint64_t epoch = wl.mapping_epoch();
  wl.commit_batched_writes(1'000'000);  // no cadence to advance: a no-op
  EXPECT_EQ(wl.writes_until_remap(), WearLeveler::kNeverRemaps);
  EXPECT_EQ(wl.mapping_epoch(), epoch);
}

TEST(BatchHorizonTest, StartGapHorizonCountsDownToTheGapMove) {
  StartGap wl(16, 4);  // psi = 4
  Rng rng(1);
  std::vector<WlPhysWrite> batch;
  // Fresh leveler: 3 writes are safe, the 4th moves the gap.
  EXPECT_EQ(wl.writes_until_remap(), 3u);
  wl.on_write(LogicalLineAddr{0}, rng, batch);
  EXPECT_EQ(wl.writes_until_remap(), 2u);
  const std::uint64_t epoch = wl.mapping_epoch();
  wl.commit_batched_writes(2);
  EXPECT_EQ(wl.writes_until_remap(), 0u);
  EXPECT_EQ(wl.mapping_epoch(), epoch);  // fast-forward moves no mapping
  batch.clear();
  wl.on_write(LogicalLineAddr{0}, rng, batch);  // the gap move fires here
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].is_overhead);
  EXPECT_NE(wl.mapping_epoch(), epoch);
  EXPECT_EQ(wl.writes_until_remap(), 3u);  // cadence restarted
}

TEST(BatchHorizonTest, HorizonWritesAreMigrationAndEpochFree) {
  // Every batching leveler must take writes_until_remap() writes without
  // emitting migration writes or changing the mapping — that is exactly
  // what lets the engine skip per-write on_write() calls.
  Rng rng(3);
  WearLevelerParams params;
  params.swap_interval = 5;
  params.tlsr_subregion_lines = 16;
  EnduranceView view(64);
  for (std::size_t i = 0; i < 64; ++i) {
    view[i] = 100.0 + static_cast<double>(i);
  }
  for (const std::string name : {"startgap", "pcms", "bwl", "twl"}) {
    auto wl = make_wear_leveler(name, 64, view, params, rng);
    const std::uint64_t h = wl->writes_until_remap();
    ASSERT_EQ(h, params.swap_interval - 1) << name;
    std::vector<WlPhysWrite> batch;
    for (std::uint64_t i = 0; i < h; ++i) {
      const std::uint64_t epoch = wl->mapping_epoch();
      batch.clear();
      wl->on_write(LogicalLineAddr{i % wl->logical_lines()}, rng, batch);
      EXPECT_EQ(batch.size(), 1u) << name << " write " << i;
      EXPECT_FALSE(batch[0].is_overhead) << name;
      EXPECT_EQ(wl->mapping_epoch(), epoch) << name;
      EXPECT_EQ(wl->writes_until_remap(), h - i - 1) << name;
    }
    // The next write crosses the cadence; afterwards the horizon restarts.
    batch.clear();
    wl->on_write(LogicalLineAddr{0}, rng, batch);
    EXPECT_EQ(wl->writes_until_remap(), h) << name;
  }
}

TEST(BatchHorizonTest, CommitFastForwardMatchesPerWriteCadence) {
  Rng rng_a(7), rng_b(7);
  WearLevelerParams params;
  params.swap_interval = 6;
  EnduranceView view(32, 200.0);
  auto a = make_wear_leveler("pcms", 32, view, params, rng_a);
  auto b = make_wear_leveler("pcms", 32, view, params, rng_b);
  // a: three per-write calls; b: one commit of three. Cadence must agree.
  std::vector<WlPhysWrite> batch;
  for (int i = 0; i < 3; ++i) {
    batch.clear();
    a->on_write(LogicalLineAddr{static_cast<std::uint64_t>(i)}, rng_a, batch);
  }
  b->commit_batched_writes(3);
  EXPECT_EQ(a->writes_until_remap(), b->writes_until_remap());
}

TEST(BatchHorizonTest, PerWriteStateLevelersDeclineBatching) {
  Rng rng(5);
  WearLevelerParams params;
  params.swap_interval = 5;
  params.tlsr_subregion_lines = 16;
  EnduranceView view(64, 150.0);
  for (const std::string name : {"tlsr", "wawl", "agebased"}) {
    auto wl = make_wear_leveler(name, 64, view, params, rng);
    EXPECT_EQ(wl->writes_until_remap(), 0u) << name;
    EXPECT_THROW(wl->commit_batched_writes(1), std::logic_error) << name;
    wl->commit_batched_writes(0);  // an empty commit is always fine
  }
}

TEST(FactoryTest, PaperSchemesListMatchesEvaluation) {
  const auto& schemes = paper_wear_levelers();
  ASSERT_EQ(schemes.size(), 4u);
  EXPECT_EQ(schemes[0], "tlsr");
  EXPECT_EQ(schemes[1], "pcms");
  EXPECT_EQ(schemes[2], "bwl");
  EXPECT_EQ(schemes[3], "wawl");
}

}  // namespace
}  // namespace nvmsec
