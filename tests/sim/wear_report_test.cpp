#include "sim/wear_report.h"

#include <gtest/gtest.h>

#include <memory>

namespace nvmsec {
namespace {

TEST(GiniTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(gini_coefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({0.0, 0.0}), 0.0);
  EXPECT_THROW(gini_coefficient({1.0, -1.0}), std::invalid_argument);
}

TEST(GiniTest, UniformIsZero) {
  EXPECT_NEAR(gini_coefficient(std::vector<double>(100, 3.0)), 0.0, 1e-12);
}

TEST(GiniTest, ConcentrationApproachesOne) {
  std::vector<double> values(100, 0.0);
  values[0] = 1.0;
  EXPECT_NEAR(gini_coefficient(values), 0.99, 0.001);
}

TEST(GiniTest, KnownTwoPointValue) {
  // {1, 3}: Gini = (2*(1*1 + 2*3)/(2*4)) - 3/2 = 14/8 - 12/8 = 0.25.
  EXPECT_NEAR(gini_coefficient({1.0, 3.0}), 0.25, 1e-12);
}

std::shared_ptr<const EnduranceMap> tiny_map() {
  return std::make_shared<EnduranceMap>(DeviceGeometry::scaled(16, 4),
                                        std::vector<Endurance>{10, 10, 10, 10});
}

TEST(WearReportTest, FreshDeviceIsAllZero) {
  Device d(tiny_map());
  const WearReport r = analyze_wear(d);
  EXPECT_DOUBLE_EQ(r.harvest_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.utilization_gini, 0.0);
  EXPECT_EQ(r.worn_out_lines, 0u);
  EXPECT_DOUBLE_EQ(r.max_line_utilization, 0.0);
}

TEST(WearReportTest, UniformWearHasZeroGini) {
  Device d(tiny_map());
  for (std::uint64_t l = 0; l < 16; ++l) {
    for (int k = 0; k < 5; ++k) d.write(PhysLineAddr{l});
  }
  const WearReport r = analyze_wear(d);
  EXPECT_DOUBLE_EQ(r.harvest_fraction, 0.5);
  EXPECT_NEAR(r.utilization_gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.max_line_utilization, 0.5);
  EXPECT_DOUBLE_EQ(r.min_line_utilization, 0.5);
}

TEST(WearReportTest, ConcentratedWearShowsUp) {
  Device d(tiny_map());
  for (int k = 0; k < 10; ++k) d.write(PhysLineAddr{0});  // wears out line 0
  const WearReport r = analyze_wear(d);
  EXPECT_EQ(r.worn_out_lines, 1u);
  EXPECT_DOUBLE_EQ(r.max_line_utilization, 1.0);
  EXPECT_DOUBLE_EQ(r.min_line_utilization, 0.0);
  EXPECT_GT(r.utilization_gini, 0.9);
  EXPECT_NEAR(r.harvest_fraction, 10.0 / 160.0, 1e-12);
}

TEST(WearReportTest, RegionUtilizationAverages) {
  Device d(tiny_map());  // 4 lines per region
  // Region 2: wear two of its four lines halfway.
  for (int k = 0; k < 5; ++k) {
    d.write(PhysLineAddr{8});
    d.write(PhysLineAddr{9});
  }
  const WearReport r = analyze_wear(d);
  ASSERT_EQ(r.region_utilization.size(), 4u);
  EXPECT_NEAR(r.region_utilization[2], 0.25, 1e-12);  // (0.5+0.5+0+0)/4
  EXPECT_DOUBLE_EQ(r.region_utilization[0], 0.0);
}

}  // namespace
}  // namespace nvmsec
