// Cross-validation of the two engines: on uniform-rate workloads the
// event-driven simulator must agree with the per-write stochastic engine
// (to within one sweep of the address space — the event engine measures
// continuous rounds).
#include <gtest/gtest.h>

#include <memory>

#include "attack/attack.h"
#include "core/maxwe.h"
#include "nvm/device.h"
#include "sim/engine.h"
#include "sim/event_sim.h"
#include "spare/spare_scheme.h"
#include "wearlevel/none.h"

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> model_map(std::uint64_t lines,
                                              std::uint64_t regions,
                                              std::uint64_t seed) {
  Rng rng(seed);
  EnduranceModelParams params;
  params.endurance_at_mean = 500.0;  // scaled so the per-write engine is fast
  const EnduranceModel model(params);
  return std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::scaled(lines, regions), model,
                               rng));
}

double stochastic_uaa(const std::shared_ptr<const EnduranceMap>& map,
                      SpareScheme& spare) {
  Device device(map);
  auto attack = make_uaa();
  NoWearLeveling wl(spare.working_lines());
  Rng rng(99);
  Engine engine(device, *attack, wl, spare, rng);
  return engine.run().user_writes;
}

double event_uaa(const std::shared_ptr<const EnduranceMap>& map,
                 SpareScheme& spare) {
  UniformEventSimulator sim(map, spare);
  return sim.run().user_writes;
}

class CrossEngineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossEngineTest, NoSpareAgrees) {
  auto map = model_map(512, 32, GetParam());
  auto s1 = make_no_spare(map);
  auto s2 = make_no_spare(map);
  const double stochastic = stochastic_uaa(map, *s1);
  const double event = event_uaa(map, *s2);
  EXPECT_NEAR(event, stochastic, 512.0) << "one sweep tolerance";
}

TEST_P(CrossEngineTest, PsWorstAgrees) {
  auto map = model_map(512, 32, GetParam());
  Rng r1(5), r2(5);
  auto s1 = make_ps_worst(map, 64, r1);
  auto s2 = make_ps_worst(map, 64, r2);
  const double stochastic = stochastic_uaa(map, *s1);
  const double event = event_uaa(map, *s2);
  EXPECT_NEAR(event, stochastic, 512.0);
}

TEST_P(CrossEngineTest, MaxWeAgrees) {
  auto map = model_map(512, 32, GetParam());
  MaxWeParams params;
  params.spare_fraction = 0.125;
  params.swr_fraction = 0.75;
  auto s1 = make_maxwe(map, params);
  auto s2 = make_maxwe(map, params);
  const double stochastic = stochastic_uaa(map, *s1);
  const double event = event_uaa(map, *s2);
  EXPECT_NEAR(event, stochastic, 512.0);
}

TEST_P(CrossEngineTest, PsAverageAgrees) {
  auto map = model_map(512, 32, GetParam());
  // Identical pool draws: construct both schemes from the same seed.
  Rng r1(7), r2(7);
  auto s1 = make_ps(map, 64, r1);
  auto s2 = make_ps(map, 64, r2);
  const double stochastic = stochastic_uaa(map, *s1);
  const double event = event_uaa(map, *s2);
  EXPECT_NEAR(event, stochastic, 512.0);
}

TEST_P(CrossEngineTest, MaxWeAgreesWithPerLineJitter) {
  // Intra-region jitter gives every line a distinct endurance — a harsher
  // test of the event engine's per-line accounting than the
  // region-constant default.
  Rng rng(GetParam());
  EnduranceModelParams params;
  params.endurance_at_mean = 500.0;
  const EnduranceModel model(params);
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::scaled(512, 32), model, rng));
  auto jittered = std::make_shared<EnduranceMap>(*map);
  jittered->apply_line_jitter(0.2, rng);

  MaxWeParams p;
  p.spare_fraction = 0.125;
  p.swr_fraction = 0.75;
  auto s1 = make_maxwe(jittered, p);
  auto s2 = make_maxwe(jittered, p);
  const double stochastic = stochastic_uaa(jittered, *s1);
  const double event = event_uaa(jittered, *s2);
  EXPECT_NEAR(event, stochastic, 512.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(CrossEngineRandomAttackTest, RandomUniformApproachesUaaLifetime) {
  // A uniform-random attack has the same expected per-line rate as the
  // sweep; on an unprotected device the lifetimes should be close (the
  // weakest line's hit count concentrates well at endurance 500).
  auto map = model_map(512, 32, 11);
  auto s1 = make_no_spare(map);
  const double sweep = stochastic_uaa(map, *s1);

  Device device(map);
  auto attack = make_random_uniform();
  NoWearLeveling wl(512);
  auto s2 = make_no_spare(map);
  Rng rng(12);
  Engine engine(device, *attack, wl, *s2, rng);
  const double random = engine.run().user_writes;
  EXPECT_NEAR(random / sweep, 1.0, 0.25);
}

}  // namespace
}  // namespace nvmsec
