#include "sim/bit_engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/maxwe.h"
#include "wearlevel/none.h"

namespace nvmsec {
namespace {

struct Stack {
  std::shared_ptr<const EnduranceMap> map;
  std::unique_ptr<BitDevice> device;
  std::unique_ptr<Attack> attack;
  std::unique_ptr<PayloadModel> payload;
  std::unique_ptr<WriteCodec> codec;
  std::unique_ptr<WearLeveler> wl;
  std::unique_ptr<SpareScheme> spare;
  std::unique_ptr<Rng> rng;
  std::unique_ptr<BitEngine> engine;
};

Stack make_stack(const std::string& attack, const std::string& payload,
                 const std::string& codec, const std::string& spare,
                 std::uint32_t ecp_entries = 0, std::uint64_t seed = 1) {
  Stack s;
  Rng setup(seed);
  EnduranceModelParams params;
  params.endurance_at_mean = 500.0;
  const EnduranceModel model(params);
  s.map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::scaled(256, 16), model, setup));
  BitDeviceParams dp;
  dp.ecp_entries = ecp_entries;
  s.rng = std::make_unique<Rng>(seed + 1);
  s.device = std::make_unique<BitDevice>(s.map, dp, *s.rng);
  s.attack = make_attack(attack);
  s.payload = make_payload(payload);
  s.codec = make_codec(codec);
  if (spare == "maxwe") {
    MaxWeParams mp;
    mp.spare_fraction = 0.25;
    mp.swr_fraction = 0.5;
    s.spare = make_maxwe(s.map, mp);
  } else {
    s.spare = make_no_spare(s.map);
  }
  s.wl = std::make_unique<NoWearLeveling>(s.spare->working_lines());
  s.engine = std::make_unique<BitEngine>(*s.device, *s.attack, *s.payload,
                                         *s.codec, *s.wl, *s.spare, *s.rng);
  return s;
}

TEST(BitEngineTest, RunsToFailureWithFullWriteStress) {
  Stack s = make_stack("uaa", "random", "full", "none");
  const LifetimeResult r = s.engine->run();
  EXPECT_TRUE(r.failed);
  EXPECT_GT(r.normalized, 0.0);
  EXPECT_LT(r.normalized, 1.0);
  EXPECT_GE(r.line_deaths, 1u);
}

TEST(BitEngineTest, DifferentialCodecOutlivesFullWrite) {
  const double full =
      make_stack("uaa", "random", "full", "none").engine->run().normalized;
  const double diff =
      make_stack("uaa", "random", "differential", "none")
          .engine->run()
          .normalized;
  EXPECT_GT(diff, 1.5 * full);
}

TEST(BitEngineTest, AdversarialPayloadNeutralizesFnw) {
  const double fnw_benign =
      make_stack("uaa", "random", "fnw", "none").engine->run().normalized;
  const double fnw_adv = make_stack("uaa", "fnw-adversarial", "fnw", "none")
                             .engine->run()
                             .normalized;
  const double diff_adv =
      make_stack("uaa", "fnw-adversarial", "differential", "none")
          .engine->run()
          .normalized;
  // The adversarial pattern pins FNW to differential-write behaviour...
  EXPECT_NEAR(fnw_adv / diff_adv, 1.0, 0.15);
  // ...and costs it its benign-data edge (random flips only ~half the
  // cells; the alternation flips exactly half every write).
  EXPECT_LT(fnw_adv, fnw_benign);
}

TEST(BitEngineTest, MaxWeComposesWithCodecs) {
  // Spare-line replacement stacks multiplicatively on top of the codec.
  const double codec_only =
      make_stack("uaa", "random", "fnw", "none").engine->run().normalized;
  const double with_maxwe =
      make_stack("uaa", "random", "fnw", "maxwe").engine->run().normalized;
  EXPECT_GT(with_maxwe, 1.5 * codec_only);
}

TEST(BitEngineTest, EcpAddsABoundedSlice) {
  const double base =
      make_stack("uaa", "random", "full", "none").engine->run().normalized;
  const double with_ecp =
      make_stack("uaa", "random", "full", "none", 6).engine->run().normalized;
  EXPECT_GT(with_ecp, base);
  EXPECT_LT(with_ecp, 1.5 * base);
}

TEST(BitEngineTest, WriteCapStopsRun) {
  Stack s = make_stack("uaa", "random", "full", "none");
  const LifetimeResult r = s.engine->run(100);
  EXPECT_FALSE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 100.0);
}

TEST(BitEngineTest, MismatchedComponentsRejected) {
  Stack s = make_stack("uaa", "random", "full", "none");
  NoWearLeveling wrong(16);
  EXPECT_THROW(BitEngine(*s.device, *s.attack, *s.payload, *s.codec, wrong,
                         *s.spare, *s.rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace nvmsec
