#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

ExperimentConfig small_event_config() {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(2048, 128);
  c.endurance.endurance_at_mean = 1000.0;
  c.mode = SimulationMode::kUniformEvent;
  return c;
}

TEST(ExperimentConfigTest, SpareLinesAreRegionAligned) {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(2048, 128);  // 16 lines/region
  c.spare_fraction = 0.10;                         // 13 regions
  EXPECT_EQ(c.spare_lines(), 13u * 16u);
  c.spare_fraction = 0.0;
  EXPECT_EQ(c.spare_lines(), 0u);
}

TEST(ExperimentTest, EventModeRejectsNonUniformAttack) {
  ExperimentConfig c = small_event_config();
  c.attack = "bpa";
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(ExperimentTest, EventModeRejectsWearLeveler) {
  ExperimentConfig c = small_event_config();
  c.wear_leveler = "tlsr";
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(ExperimentTest, UnknownSpareSchemeRejected) {
  ExperimentConfig c = small_event_config();
  c.spare_scheme = "bogus";
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(ExperimentTest, ZeroSpareBudgetRejectedForPooledSchemes) {
  ExperimentConfig c = small_event_config();
  c.spare_scheme = "ps";
  c.spare_fraction = 0.001;  // rounds to zero regions
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(ExperimentTest, SameSeedIsReproducible) {
  ExperimentConfig c = small_event_config();
  c.spare_scheme = "maxwe";
  const LifetimeResult a = run_experiment(c);
  const LifetimeResult b = run_experiment(c);
  EXPECT_DOUBLE_EQ(a.normalized, b.normalized);
  EXPECT_EQ(a.line_deaths, b.line_deaths);
}

TEST(ExperimentTest, DifferentSeedsVary) {
  ExperimentConfig c = small_event_config();
  c.spare_scheme = "none";
  c.seed = 1;
  const double a = run_experiment(c).normalized;
  c.seed = 2;
  const double b = run_experiment(c).normalized;
  EXPECT_NE(a, b);
}

TEST(ExperimentTest, SchemeOrderingUnderUaa) {
  // The paper's §5.3.1 ordering: Max-WE > PCD/PS > PS-worst > unprotected.
  ExperimentConfig c = small_event_config();
  auto lifetime = [&](const std::string& scheme) {
    c.spare_scheme = scheme;
    double acc = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
      c.seed = seed;
      acc += run_experiment(c).normalized;
    }
    return acc / 3;
  };
  const double none = lifetime("none");
  const double maxwe = lifetime("maxwe");
  const double pcd = lifetime("pcd");
  const double ps_worst = lifetime("ps-worst");
  EXPECT_GT(maxwe, pcd);
  EXPECT_GT(pcd, ps_worst);
  EXPECT_GT(ps_worst, none);
}

TEST(ExperimentTest, StochasticModeRunsAllWearLevelers) {
  ExperimentConfig c = scaled_stochastic_config(512, 32, 300.0);
  c.attack = "bpa";
  c.spare_scheme = "ps";
  for (const std::string wl : {"none", "startgap", "tlsr", "pcms", "bwl",
                               "wawl"}) {
    c.wear_leveler = wl;
    const LifetimeResult r = run_experiment(c);
    EXPECT_TRUE(r.failed) << wl;
    EXPECT_GT(r.normalized, 0.0) << wl;
    EXPECT_LT(r.normalized, 1.0) << wl;
  }
}

TEST(ExperimentTest, LineJitterLowersUnprotectedLifetime) {
  ExperimentConfig c = small_event_config();
  c.spare_scheme = "none";
  const double plain = run_experiment(c).normalized;
  c.line_jitter_sigma = 0.3;
  const double jittered = run_experiment(c).normalized;
  EXPECT_LT(jittered, plain);
}

TEST(ExperimentTest, MaxUserWritesCapsStochasticRuns) {
  ExperimentConfig c = scaled_stochastic_config(512, 32, 1e7);
  c.spare_scheme = "none";
  c.max_user_writes = 10000;
  const LifetimeResult r = run_experiment(c);
  EXPECT_FALSE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 10000.0);
}

TEST(ExperimentTest, BitLevelModeRunsEndToEnd) {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(256, 16);
  c.endurance.endurance_at_mean = 400.0;
  c.mode = SimulationMode::kBitLevel;
  c.payload = "random";
  c.codec = "fnw";
  c.ecp_entries = 2;
  c.spare_scheme = "maxwe";
  c.spare_fraction = 0.25;
  c.swr_fraction = 0.5;
  const LifetimeResult r = run_experiment(c);
  EXPECT_TRUE(r.failed);
  EXPECT_GT(r.normalized, 0.0);
}

TEST(ExperimentTest, BitLevelModeRejectsDramBuffer) {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(256, 16);
  c.endurance.endurance_at_mean = 400.0;
  c.mode = SimulationMode::kBitLevel;
  c.dram_buffer_lines = 8;
  c.max_user_writes = 100;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(ExperimentTest, BitLevelCodecChangesLifetime) {
  auto lifetime = [](const std::string& codec) {
    ExperimentConfig c;
    c.geometry = DeviceGeometry::scaled(256, 16);
    c.endurance.endurance_at_mean = 400.0;
    c.mode = SimulationMode::kBitLevel;
    c.codec = codec;
    c.seed = 5;
    return run_experiment(c).normalized;
  };
  EXPECT_GT(lifetime("differential"), 1.5 * lifetime("full"));
}

TEST(ExperimentTest, FreepSchemeRunsInBothClassicModes) {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(2048, 128);
  c.endurance.endurance_at_mean = 1000.0;
  c.spare_scheme = "freep";
  const LifetimeResult event = run_experiment(c);
  EXPECT_TRUE(event.failed);
  c.mode = SimulationMode::kStochastic;
  const LifetimeResult stochastic = run_experiment(c);
  EXPECT_TRUE(stochastic.failed);
  EXPECT_NEAR(event.user_writes, stochastic.user_writes, 2048.0);
}

TEST(ExperimentTest, ScaledConfigHasTightenedCadences) {
  const ExperimentConfig c = scaled_stochastic_config(1024, 64, 1e4);
  EXPECT_EQ(c.mode, SimulationMode::kStochastic);
  EXPECT_LT(c.wl.swap_interval, WearLevelerParams{}.swap_interval);
  EXPECT_LT(c.wl.tlsr_subregion_lines,
            WearLevelerParams{}.tlsr_subregion_lines);
}


TEST(ExperimentTest, EventModeRunsStationaryAttacks) {
  // The event engine bulk-advances every stationary-rate attack, not just
  // UAA: hotspot, random, and zipf all complete without the per-write loop.
  for (const std::string attack : {"uaa", "hotspot", "random", "zipf"}) {
    ExperimentConfig c = small_event_config();
    c.attack = attack;
    c.hotspot_working_set = 4;
    const LifetimeResult r = run_experiment(c);
    EXPECT_TRUE(r.failed) << attack;
    EXPECT_GT(r.user_writes, 0.0) << attack;
  }
}

TEST(ExperimentTest, EventModeZipfTracksStochastic) {
  // Mean-field check: the event engine's analytic zipf rates land within a
  // sampling-noise band of the stochastic per-write engine.
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(512, 32);
  c.endurance.endurance_at_mean = 500.0;
  c.attack = "zipf";
  c.zipf_skew = 0.99;
  c.seed = 7;

  ExperimentConfig event_c = c;
  event_c.mode = SimulationMode::kUniformEvent;
  const LifetimeResult event_r = run_experiment(event_c);

  ExperimentConfig stoch_c = c;
  stoch_c.mode = SimulationMode::kStochastic;
  const LifetimeResult stoch_r = run_experiment(stoch_c);

  ASSERT_GT(stoch_r.user_writes, 0.0);
  EXPECT_NEAR(event_r.user_writes / stoch_r.user_writes, 1.0, 0.20);
}

TEST(ExperimentTest, EventModeHotspotTracksStochastic) {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(512, 32);
  c.endurance.endurance_at_mean = 500.0;
  c.attack = "hotspot";
  c.hotspot_working_set = 8;
  c.seed = 9;

  ExperimentConfig event_c = c;
  event_c.mode = SimulationMode::kUniformEvent;
  const LifetimeResult event_r = run_experiment(event_c);

  ExperimentConfig stoch_c = c;
  stoch_c.mode = SimulationMode::kStochastic;
  const LifetimeResult stoch_r = run_experiment(stoch_c);

  ASSERT_GT(stoch_r.user_writes, 0.0);
  // The hotspot rotation is deterministic in both engines; only the
  // continuous-time rounding separates them.
  EXPECT_NEAR(event_r.user_writes / stoch_r.user_writes, 1.0, 0.10);
}

TEST(ExperimentTest, FingerprintCoversHotspotWorkingSet) {
  ExperimentConfig a = small_event_config();
  a.attack = "hotspot";
  ExperimentConfig b = a;
  b.hotspot_working_set = 16;
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
}

void expect_identical(const LifetimeResult& fresh, const LifetimeResult& ws) {
  EXPECT_EQ(fresh.user_writes, ws.user_writes);
  EXPECT_EQ(fresh.overhead_writes, ws.overhead_writes);
  EXPECT_EQ(fresh.device_writes, ws.device_writes);
  EXPECT_EQ(fresh.ideal_lifetime, ws.ideal_lifetime);
  EXPECT_EQ(fresh.normalized, ws.normalized);
  EXPECT_EQ(fresh.line_deaths, ws.line_deaths);
  EXPECT_EQ(fresh.failed, ws.failed);
  EXPECT_EQ(fresh.failure_reason, ws.failure_reason);
  EXPECT_EQ(fresh.wear_gini, ws.wear_gini);
}

TEST(ExperimentWorkspaceTest, EventModeReuseIsBitIdentical) {
  // The fleet hot path: one workspace, many devices of the same shape.
  // Every reused run must match a fresh construction bit for bit.
  ExperimentWorkspace ws;
  for (const char* scheme : {"maxwe", "pcd", "none"}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      ExperimentConfig c = small_event_config();
      c.spare_scheme = scheme;
      c.seed = seed;
      const LifetimeResult fresh = run_experiment(c);
      const LifetimeResult reused = run_experiment(c, nullptr, &ws);
      expect_identical(fresh, reused);
    }
  }
}

TEST(ExperimentWorkspaceTest, StochasticModeReuseIsBitIdentical) {
  ExperimentWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ExperimentConfig c = scaled_stochastic_config(512, 32, 300.0);
    c.attack = "bpa";
    c.wear_leveler = "tlsr";
    c.spare_scheme = "maxwe";
    c.seed = seed;
    const LifetimeResult fresh = run_experiment(c);
    const LifetimeResult reused = run_experiment(c, nullptr, &ws);
    expect_identical(fresh, reused);
  }
}

TEST(ExperimentWorkspaceTest, ShapeChangesRebuildCleanly) {
  // Alternating geometries, schemes, and modes through one workspace:
  // whatever cannot be recycled must be rebuilt, never mixed up.
  ExperimentWorkspace ws;
  ExperimentConfig big = small_event_config();
  big.spare_scheme = "maxwe";
  ExperimentConfig small = small_event_config();
  small.geometry = DeviceGeometry::scaled(1024, 64);
  small.spare_scheme = "ps";
  ExperimentConfig stoch = scaled_stochastic_config(512, 32, 300.0);
  stoch.spare_scheme = "maxwe";
  for (const ExperimentConfig* c : {&big, &small, &stoch, &big, &stoch}) {
    const LifetimeResult fresh = run_experiment(*c);
    const LifetimeResult reused = run_experiment(*c, nullptr, &ws);
    expect_identical(fresh, reused);
  }
}

TEST(ExperimentWorkspaceTest, LineJitterRunsMatchThroughReuse) {
  // apply_line_jitter draws extra RNG — the rebuild path must consume the
  // identical stream so the jittered map (and everything after) matches.
  ExperimentWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ExperimentConfig c = small_event_config();
    c.spare_scheme = "maxwe";
    c.line_jitter_sigma = 0.2;
    c.seed = seed;
    const LifetimeResult fresh = run_experiment(c);
    const LifetimeResult reused = run_experiment(c, nullptr, &ws);
    expect_identical(fresh, reused);
  }
}

}  // namespace
}  // namespace nvmsec
