#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"
#include "sim/endurance_cache.h"

namespace nvmsec {
namespace {

// Exact (bitwise) equality of two LifetimeResults — the parallel runner's
// contract is bit-identity with the serial loop, not approximation.
void expect_identical(const LifetimeResult& a, const LifetimeResult& b,
                      std::size_t index) {
  EXPECT_DOUBLE_EQ(a.user_writes, b.user_writes) << "run " << index;
  EXPECT_EQ(a.overhead_writes, b.overhead_writes) << "run " << index;
  EXPECT_EQ(a.absorbed_writes, b.absorbed_writes) << "run " << index;
  EXPECT_EQ(a.device_writes, b.device_writes) << "run " << index;
  EXPECT_DOUBLE_EQ(a.ideal_lifetime, b.ideal_lifetime) << "run " << index;
  EXPECT_DOUBLE_EQ(a.normalized, b.normalized) << "run " << index;
  EXPECT_EQ(a.line_deaths, b.line_deaths) << "run " << index;
  EXPECT_EQ(a.failed, b.failed) << "run " << index;
  EXPECT_EQ(a.failure_reason, b.failure_reason) << "run " << index;
}

void expect_matches_serial(const std::vector<ExperimentConfig>& configs,
                           const ParallelOptions& options) {
  const std::vector<LifetimeResult> parallel =
      run_experiments(configs, options);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(parallel[i], run_experiment(configs[i]), i);
  }
}

ParallelOptions four_jobs() {
  ParallelOptions options;
  options.jobs = 4;
  options.cache = nullptr;
  return options;
}

TEST(RunExperimentsTest, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(run_experiments({}, four_jobs()).empty());
}

TEST(RunExperimentsTest, EventModeBitIdenticalToSerial) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    for (double fraction : {0.10, 0.30}) {
      ExperimentConfig c;
      c.geometry = DeviceGeometry::scaled(4096, 64);
      c.endurance.endurance_at_mean = 1e6;
      c.seed = seed;
      c.spare_fraction = fraction;
      c.spare_scheme = "maxwe";
      configs.push_back(c);
    }
  }
  // Mix in schemes that draw from the rng during construction, so cached
  // post-map rng state is exercised, and the unprotected baseline.
  configs[1].spare_scheme = "pcd";
  configs[3].spare_scheme = "ps";
  configs[5].spare_scheme = "none";
  configs[7].line_jitter_sigma = 0.2;
  expect_matches_serial(configs, four_jobs());
}

TEST(RunExperimentsTest, StochasticModeBitIdenticalToSerial) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : {7, 8, 9, 10}) {
    ExperimentConfig c = scaled_stochastic_config(1024, 64, 2000.0);
    c.seed = seed;
    c.attack = "bpa";
    c.wear_leveler = "wawl";
    c.spare_scheme = "maxwe";
    configs.push_back(c);
  }
  configs[1].attack = "uaa";
  configs[2].wear_leveler = "tlsr";
  configs[3].spare_scheme = "ps-worst";
  expect_matches_serial(configs, four_jobs());
}

TEST(RunExperimentsTest, BitLevelModeBitIdenticalToSerial) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : {1, 2, 3}) {
    ExperimentConfig c;
    c.geometry = DeviceGeometry::scaled(256, 16);
    c.endurance.endurance_at_mean = 400.0;
    c.mode = SimulationMode::kBitLevel;
    c.codec = "fnw";
    c.ecp_entries = 2;
    c.spare_scheme = "maxwe";
    c.spare_fraction = 0.25;
    c.swr_fraction = 0.5;
    c.seed = seed;
    configs.push_back(c);
  }
  expect_matches_serial(configs, four_jobs());
}

TEST(RunExperimentsTest, ResultsComeBackInInputOrder) {
  // Seeds with visibly different outcomes, shuffled: each slot must hold
  // its own config's result even though execution order is arbitrary.
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed : {31, 5, 19, 2, 23, 11, 3, 17}) {
    ExperimentConfig c;
    c.geometry = DeviceGeometry::scaled(2048, 128);
    c.endurance.endurance_at_mean = 1e6;
    c.seed = seed;
    c.spare_scheme = "none";
    configs.push_back(c);
  }
  const std::vector<LifetimeResult> results =
      run_experiments(configs, four_jobs());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].normalized,
                     run_experiment(configs[i]).normalized)
        << "slot " << i;
  }
}

TEST(RunExperimentsTest, MoreJobsThanConfigsIsFine) {
  std::vector<ExperimentConfig> configs(2);
  for (auto& c : configs) {
    c.geometry = DeviceGeometry::scaled(2048, 128);
    c.endurance.endurance_at_mean = 1e6;
    c.spare_scheme = "maxwe";
  }
  configs[1].seed = 43;
  ParallelOptions options;
  options.jobs = 16;
  expect_matches_serial(configs, options);
}

TEST(RunExperimentsTest, JobsOneUsesSerialPath) {
  std::vector<ExperimentConfig> configs(3);
  for (std::uint64_t i = 0; i < configs.size(); ++i) {
    configs[i].geometry = DeviceGeometry::scaled(2048, 128);
    configs[i].endurance.endurance_at_mean = 1e6;
    configs[i].spare_scheme = "maxwe";
    configs[i].seed = 42 + i;
  }
  ParallelOptions options;
  options.jobs = 1;
  expect_matches_serial(configs, options);
}

TEST(RunExperimentsTest, InvalidConfigPropagatesSmallestIndexError) {
  std::vector<ExperimentConfig> configs(4);
  for (auto& c : configs) {
    c.geometry = DeviceGeometry::scaled(2048, 128);
    c.endurance.endurance_at_mean = 1e6;
    c.spare_scheme = "maxwe";
  }
  configs[1].attack = "bpa";   // invalid for the event engine
  configs[2].attack = "zipf";  // also invalid; index 1 must win
  try {
    run_experiments(configs, four_jobs());
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bpa"), std::string::npos);
  }
}

TEST(RunExperimentsTest, SharedObserverSinksRejectedWhenParallel) {
  MetricsRegistry shared;
  std::vector<ExperimentConfig> configs(2);
  for (auto& c : configs) {
    c.geometry = DeviceGeometry::scaled(2048, 128);
    c.endurance.endurance_at_mean = 1e6;
    c.observer.metrics = &shared;
  }
  try {
    run_experiments(configs, four_jobs());
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("serial-only"), std::string::npos);
  }
  // The same configs are fine on the serial path.
  ParallelOptions serial;
  serial.jobs = 1;
  EXPECT_NO_THROW(run_experiments(configs, serial));
}

TEST(RunExperimentsTest, PerRunObserversAllowedWhenParallel) {
  MetricsRegistry a, b;
  std::vector<ExperimentConfig> configs(2);
  for (auto& c : configs) {
    c.geometry = DeviceGeometry::scaled(2048, 128);
    c.endurance.endurance_at_mean = 1e6;
    c.spare_scheme = "maxwe";
  }
  configs[0].observer.metrics = &a;
  configs[1].observer.metrics = &b;
  configs[1].seed = 43;
  const std::vector<LifetimeResult> results =
      run_experiments(configs, four_jobs());
  // Each run flushed into its own registry.
  EXPECT_GT(a.counter("engine.user_writes").value(), 0u);
  EXPECT_GT(b.counter("engine.user_writes").value(), 0u);
  EXPECT_GT(results[0].normalized, 0.0);
}

TEST(RunExperimentsTest, ExplicitCacheIsUsedAndStillBitIdentical) {
  EnduranceMapCache cache(8);
  ParallelOptions options;
  options.jobs = 4;
  options.cache = &cache;

  std::vector<ExperimentConfig> configs;
  for (double fraction : {0.10, 0.20, 0.30}) {
    for (std::uint64_t seed : {1, 2}) {
      ExperimentConfig c;
      c.geometry = DeviceGeometry::scaled(4096, 64);
      c.endurance.endurance_at_mean = 1e6;
      c.seed = seed;
      c.spare_fraction = fraction;
      c.spare_scheme = "maxwe";
      configs.push_back(c);
    }
  }
  // Warm both keys first so the parallel pass is deterministic (two
  // threads racing on the same cold key may legitimately both miss).
  for (std::uint64_t seed : {1, 2}) {
    cache.get_or_build(configs[0].geometry, configs[0].endurance, seed, 0.0);
  }
  ASSERT_EQ(cache.misses(), 2u);

  expect_matches_serial(configs, options);
  // 3 fractions x 2 seeds share the 2 prewarmed maps: all hits, no builds.
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 6u);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace nvmsec
