// The flight recorder's determinism contract: the decision event log is a
// pure function of the configuration. Running serially or under --jobs,
// uninterrupted or interrupted-and-resumed, must produce byte-identical
// logs — otherwise post-mortems could not be trusted to describe the run
// they came from.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/session.h"
#include "sim/experiment.h"
#include "sim/parallel.h"

namespace nvmsec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Run `base` under `seeds.size()` seeds with per-run in-memory event logs
/// and the given worker count; return each run's event bytes.
std::vector<std::string> event_bytes(const ExperimentConfig& base,
                                     const std::vector<std::uint64_t>& seeds,
                                     std::size_t jobs) {
  std::vector<std::ostringstream> outs(seeds.size());
  std::vector<std::unique_ptr<EventLog>> logs;
  std::vector<ExperimentConfig> configs(seeds.size(), base);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    logs.push_back(std::make_unique<EventLog>(outs[i]));
    configs[i].seed = seeds[i];
    configs[i].observer.events = logs[i].get();
  }
  ParallelOptions options;
  options.jobs = jobs;
  run_experiments(configs, options);
  std::vector<std::string> bytes;
  bytes.reserve(seeds.size());
  for (std::ostringstream& out : outs) bytes.push_back(out.str());
  return bytes;
}

void expect_serial_matches_parallel(const ExperimentConfig& base) {
  const std::vector<std::uint64_t> seeds{7, 8, 9};
  const std::vector<std::string> serial = event_bytes(base, seeds, 1);
  const std::vector<std::string> parallel = event_bytes(base, seeds, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << seeds[i];
  }
}

TEST(EventDeterminismTest, EventEngineSerialVsParallel) {
  ExperimentConfig config;
  config.geometry = DeviceGeometry::scaled(2048, 128);
  config.endurance.endurance_at_mean = 1000.0;
  config.mode = SimulationMode::kUniformEvent;
  config.spare_scheme = "maxwe";
  expect_serial_matches_parallel(config);
}

TEST(EventDeterminismTest, StochasticEngineSerialVsParallel) {
  ExperimentConfig config = scaled_stochastic_config(512, 32, 300.0);
  config.spare_scheme = "maxwe";
  expect_serial_matches_parallel(config);
}

TEST(EventDeterminismTest, BitEngineSerialVsParallel) {
  ExperimentConfig config;
  config.geometry = DeviceGeometry::scaled(256, 16);
  config.endurance.endurance_at_mean = 300.0;
  config.mode = SimulationMode::kBitLevel;
  config.spare_scheme = "maxwe";
  config.spare_fraction = 0.25;
  config.swr_fraction = 0.5;
  expect_serial_matches_parallel(config);
}

TEST(EventDeterminismTest, SharedEventSinkIsRejectedUnderJobs) {
  ExperimentConfig config;
  config.geometry = DeviceGeometry::scaled(2048, 128);
  config.endurance.endurance_at_mean = 1000.0;
  config.mode = SimulationMode::kUniformEvent;
  config.spare_scheme = "maxwe";
  std::ostringstream out;
  EventLog log(out);
  std::vector<ExperimentConfig> configs(2, config);
  for (ExperimentConfig& c : configs) c.observer.events = &log;
  configs[1].seed = 43;
  ParallelOptions options;
  options.jobs = 2;
  EXPECT_THROW(run_experiments(configs, options), std::invalid_argument);
}

TEST(EventDeterminismTest, InterruptedResumeIsByteIdentical) {
  const std::string ref_events = temp_path("evdet_ref.events.jsonl");
  const std::string res_events = temp_path("evdet_res.events.jsonl");
  const std::string ref_ckpt = temp_path("evdet_ref.ckpt");
  const std::string res_ckpt = temp_path("evdet_res.ckpt");
  for (const std::string& p : {ref_events, res_events, ref_ckpt, res_ckpt}) {
    std::filesystem::remove(p);
  }

  ExperimentConfig base = scaled_stochastic_config(512, 32, 300.0);
  base.spare_scheme = "maxwe";
  base.seed = 11;
  base.checkpoint_interval = 2000;

  // Reference: uninterrupted, but checkpointing at the same cadence —
  // checkpoint boundaries are themselves events, so the interrupted run
  // can only match a reference that also records them.
  {
    ExperimentConfig config = base;
    config.checkpoint_out = ref_ckpt;
    ObsConfig obs_config;
    obs_config.events_path = ref_events;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }

  // Interrupted: capped mid-run, then resumed to completion.
  {
    ExperimentConfig config = base;
    config.checkpoint_out = res_ckpt;
    config.max_user_writes = 5000;
    ObsConfig obs_config;
    obs_config.events_path = res_events;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }
  {
    ExperimentConfig config = base;
    config.checkpoint_out = res_ckpt;
    config.resume_from = res_ckpt;
    ObsConfig obs_config;
    obs_config.events_path = res_events;
    obs_config.resume = true;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }

  const std::string ref = slurp(ref_events);
  const std::string res = slurp(res_events);
  EXPECT_FALSE(ref.empty());
  EXPECT_EQ(ref, res);

  for (const std::string& p : {ref_events, res_events, ref_ckpt, res_ckpt}) {
    std::filesystem::remove(p);
  }
}

TEST(EventDeterminismTest, ResumeWithoutEventsInCheckpointIsRefused) {
  const std::string events = temp_path("evdet_refuse.events.jsonl");
  const std::string ckpt = temp_path("evdet_refuse.ckpt");
  std::filesystem::remove(events);
  std::filesystem::remove(ckpt);

  ExperimentConfig base = scaled_stochastic_config(512, 32, 300.0);
  base.spare_scheme = "maxwe";
  base.seed = 11;
  base.checkpoint_interval = 2000;
  base.checkpoint_out = ckpt;

  // Checkpoint written without an event log attached...
  {
    ExperimentConfig config = base;
    config.max_user_writes = 5000;
    run_experiment(config);
  }
  // ...must refuse to resume into a run that has one: the log cannot
  // contain the history the checkpoint skips over.
  {
    ExperimentConfig config = base;
    config.resume_from = ckpt;
    ObsConfig obs_config;
    obs_config.events_path = events;
    obs_config.resume = true;
    ObsSession session(obs_config);
    config.observer = session.observer();
    EXPECT_THROW(run_experiment(config), std::runtime_error);
  }

  std::filesystem::remove(events);
  std::filesystem::remove(ckpt);
}

}  // namespace
}  // namespace nvmsec
