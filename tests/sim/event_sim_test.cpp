#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/maxwe.h"
#include "spare/spare_scheme.h"

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> ramp_map(std::uint64_t regions,
                                             std::uint64_t lines_per_region,
                                             double step = 10.0) {
  std::vector<Endurance> es;
  for (std::uint64_t r = 0; r < regions; ++r) {
    es.push_back(step * static_cast<double>(r + 1));
  }
  return std::make_shared<EnduranceMap>(
      DeviceGeometry::scaled(regions * lines_per_region, regions), es);
}

TEST(EventSimTest, NullMapRejected) {
  auto map = ramp_map(4, 4);
  auto spare = make_no_spare(map);
  EXPECT_THROW(UniformEventSimulator(nullptr, *spare), std::invalid_argument);
}

TEST(EventSimTest, UnprotectedLifetimeIsWeakestLineTimesLines) {
  // LUAA = N * EL (Eq. 4): the device dies when the weakest line has taken
  // EL writes, i.e. after EL rounds of N writes each.
  auto map = ramp_map(8, 8);  // EL = 10, N = 64
  auto spare = make_no_spare(map);
  UniformEventSimulator sim(map, *spare);
  const LifetimeResult r = sim.run();
  EXPECT_TRUE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 64.0 * 10.0);
  EXPECT_EQ(r.line_deaths, 1u);
}

TEST(EventSimTest, UnprotectedNormalizedMatchesEquation5) {
  // For a (region-granular) linear ramp the normalized lifetime approaches
  // 2*EL/(EH+EL).
  auto map = ramp_map(64, 4, 5.0);  // EL=5, EH=320
  auto spare = make_no_spare(map);
  UniformEventSimulator sim(map, *spare);
  const LifetimeResult r = sim.run();
  EXPECT_NEAR(r.normalized, 2.0 * 5.0 / (320.0 + 5.0), 0.002);
}

TEST(EventSimTest, PsWorstMatchesEquation8) {
  // PS-worst on a line-granular linear ramp: lifetime = (N-S) * e_(S+1).
  auto map = ramp_map(64, 1, 10.0);  // 64 lines, e_i = 10*i
  Rng rng(1);
  const std::uint64_t spare_lines = 8;
  auto spare = make_ps_worst(map, spare_lines, rng);
  UniformEventSimulator sim(map, *spare);
  const LifetimeResult r = sim.run();
  // Spares are the 8 strongest lines; the weakest 8 working lines die and
  // are replaced by strong spares. The 9th weakest line (endurance 90)
  // kills the device at round 90; user space is 56 lines.
  EXPECT_TRUE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 56.0 * 90.0);
}

TEST(EventSimTest, PcdDegradesThenFails) {
  auto map = ramp_map(16, 4, 10.0);
  Rng rng(2);
  auto spare = make_pcd(map, /*budget=*/8, rng);
  UniformEventSimulator sim(map, *spare);
  const LifetimeResult r = sim.run();
  EXPECT_TRUE(r.failed);
  // 8 deaths tolerated; the 9th kills. Deaths are endurance-ordered, and
  // region 0 (4 lines at e=10) dies first, then region 1, then region 2's
  // first line. Lifetime must exceed the unprotected N*EL.
  EXPECT_GT(r.user_writes, 64.0 * 10.0);
  EXPECT_GE(r.line_deaths, 9u);
}

TEST(EventSimTest, MaxWeMatchesChainArithmetic) {
  // 8 regions x 2 lines, endurance 10..80 by region. spare_fraction=0.25
  // gives 2 spare regions, swr_fraction=0.5 splits them: SWR={region 0},
  // RWR={region 1}, ASR={region 2}. Working space = regions {1,3..7} = 12
  // lines. Hand-computed timeline (rounds = user writes / 12):
  //   * region 1 lines (e=20) die at round 20, redirect to their region-0
  //     partners (e=10): chains die at round 30, taking both ASR lines
  //     (region 2, e=30), which extend them to round 60;
  //   * region 3 lines (e=40) die at round 40 with the ASR pool empty ->
  //     device failure at round 40 exactly.
  auto map = ramp_map(8, 2, 10.0);
  MaxWeParams params;
  params.spare_fraction = 0.25;
  params.swr_fraction = 0.5;
  auto spare = make_maxwe(map, params);
  UniformEventSimulator sim(map, *spare);
  const LifetimeResult r = sim.run();
  EXPECT_TRUE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 12.0 * 40.0);
  // Ideal = 2 * (10+...+80) = 720 -> normalized = 480/720.
  EXPECT_NEAR(r.normalized, 480.0 / 720.0, 1e-12);
}

TEST(EventSimTest, PcdSharedLoadDynamicsAreExact) {
  // Two lines with endurance 10 and 30, PCD budget 1. At round 10 line 0
  // dies (death #1, within budget) and its address re-homes onto line 1 —
  // the only survivor — which then takes 2 writes per round. Line 1 has
  // 20 writes left at round 10, so it dies at round 10 + 20/2 = 20, and
  // that second death breaks the budget: failure at exactly round 20 with
  // 2 addresses * 20 rounds = 40 user writes.
  auto map = std::make_shared<EnduranceMap>(
      DeviceGeometry::scaled(2, 2), std::vector<Endurance>{10, 30});
  Rng rng(5);
  auto spare = make_pcd(map, /*budget=*/1, rng);
  UniformEventSimulator sim(map, *spare);
  const LifetimeResult r = sim.run();
  EXPECT_TRUE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 40.0);
  EXPECT_EQ(r.line_deaths, 2u);
}

TEST(EventSimTest, UniformEnduranceHarvestsEverything) {
  // No variation: even unprotected, the device delivers N*E writes = the
  // ideal lifetime exactly (every line dies simultaneously).
  auto map = std::make_shared<EnduranceMap>(
      DeviceGeometry::scaled(64, 8), std::vector<Endurance>(8, 25.0));
  auto spare = make_no_spare(map);
  UniformEventSimulator sim(map, *spare);
  const LifetimeResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.normalized, 1.0);
}

TEST(EventSimTest, FullPaperScaleRunsFast) {
  // The point of the event engine: the 1 GB / 4.2M-line configuration.
  Rng rng(3);
  const EnduranceModel model;
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::paper_1gb(), model, rng));
  auto spare = make_maxwe(map, MaxWeParams{});
  UniformEventSimulator sim(map, *spare);
  const LifetimeResult r = sim.run();
  EXPECT_TRUE(r.failed);
  EXPECT_GT(r.normalized, 0.10);
  EXPECT_LT(r.normalized, 0.60);
  EXPECT_GT(r.line_deaths, 100000u);
}


TEST(EventSimTest, UniformWeightsReproduceDefaultBitForBit) {
  // An explicit all-equal weight vector must normalize to 1.0 per index and
  // reproduce the unweighted arithmetic exactly, not just approximately.
  // The shared weight is a power of two so the normalization (u / sum) is
  // itself exact in floating point — the bit-for-bit claim is about the
  // simulator's arithmetic, not about fp rounding in the caller's weights.
  auto map = ramp_map(64, 4, 5.0);
  auto spare_a = make_no_spare(map);
  UniformEventSimulator plain(map, *spare_a);
  const LifetimeResult a = plain.run();

  auto spare_b = make_no_spare(map);
  UniformEventSimulator weighted(map, *spare_b);
  weighted.set_index_rates(
      std::vector<double>(spare_b->working_lines(), 2.0));
  const LifetimeResult b = weighted.run();

  EXPECT_DOUBLE_EQ(a.user_writes, b.user_writes);
  EXPECT_EQ(a.line_deaths, b.line_deaths);
  EXPECT_DOUBLE_EQ(a.normalized, b.normalized);
  EXPECT_DOUBLE_EQ(a.wear_gini, b.wear_gini);
}

TEST(EventSimTest, SetIndexRatesValidation) {
  auto map = ramp_map(4, 4);
  auto spare = make_no_spare(map);
  UniformEventSimulator sim(map, *spare);
  const std::uint64_t u = spare->working_lines();
  EXPECT_THROW(sim.set_index_rates(std::vector<double>(u - 1, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(sim.set_index_rates(std::vector<double>(u, 0.0)),
               std::invalid_argument);
  std::vector<double> negative(u, 1.0);
  negative[0] = -1.0;
  EXPECT_THROW(sim.set_index_rates(std::move(negative)),
               std::invalid_argument);
}

TEST(EventSimTest, HotspotWeightsMatchAnalyticLifetime) {
  // 0/1 weights concentrate all traffic on k indices. Unprotected, the
  // device dies when the weakest loaded line exhausts: each loaded index
  // writes u/k per round (normalization: k hot indices share u writes per
  // round), so failure is at round EL*k/u -> user_writes = u * EL * k / u.
  // Working lines u = 16, k = 4 hot indices on lines 0..3 (endurance 10):
  // each hot line takes 16/4 = 4 writes per round, dying at round 10/4;
  // user_writes = 16 * 2.5 = 40.
  auto map = ramp_map(4, 4);  // regions e = 10,20,30,40; u = 16
  auto spare = make_no_spare(map);
  UniformEventSimulator sim(map, *spare);
  std::vector<double> weights(16, 0.0);
  for (int i = 0; i < 4; ++i) weights[i] = 1.0;
  sim.set_index_rates(std::move(weights));
  const LifetimeResult r = sim.run();
  EXPECT_TRUE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 40.0);
  EXPECT_EQ(r.line_deaths, 1u);
}

TEST(EventSimTest, SkewedRatesShortenUnprotectedLifetime) {
  // A zipf-shaped rate vector focuses wear: the unprotected lifetime must
  // fall strictly below the uniform one (same map, same spare scheme).
  auto map = ramp_map(16, 8, 10.0);
  auto spare_u = make_no_spare(map);
  UniformEventSimulator uniform_sim(map, *spare_u);
  const LifetimeResult uniform = uniform_sim.run();

  auto spare_z = make_no_spare(map);
  UniformEventSimulator zipf_sim(map, *spare_z);
  const std::uint64_t u = spare_z->working_lines();
  std::vector<double> rates(u);
  for (std::uint64_t i = 0; i < u; ++i) {
    rates[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.99);
  }
  zipf_sim.set_index_rates(std::move(rates));
  const LifetimeResult skewed = zipf_sim.run();

  EXPECT_TRUE(skewed.failed);
  EXPECT_LT(skewed.user_writes, uniform.user_writes);
  EXPECT_GT(skewed.user_writes, 0.0);
}

}  // namespace
}  // namespace nvmsec
