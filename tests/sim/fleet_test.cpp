// Fleet runner tests: the determinism contract (jobs / sharding / resume
// cannot change the fleet result), failure-cause classification including
// the truncated-log fallback, aggregate merge/serialize algebra, and the
// fingerprint guard on resumed checkpoints.
#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "obs/event_log.h"
#include "util/serialize.h"

namespace nvmsec {
namespace {

/// Small but non-trivial population: real failures, multiple shards.
FleetSpec small_spec() {
  FleetSpec spec;
  spec.devices = 96;
  spec.seed_start = 7;
  spec.shard_size = 16;
  spec.base.geometry = DeviceGeometry::scaled(256, 16);
  spec.base.endurance.endurance_at_mean = 200;
  spec.base.attack = "uaa";
  spec.base.spare_scheme = "maxwe";
  return spec;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FleetRunner, ResultIsIdenticalAcrossJobCounts) {
  const FleetSpec spec = small_spec();
  FleetOptions serial;
  serial.jobs = 1;
  const std::string one = fleet_result_json(spec, run_fleet(spec, serial));

  FleetOptions threaded;
  threaded.jobs = 4;
  const std::string four = fleet_result_json(spec, run_fleet(spec, threaded));
  EXPECT_EQ(one, four);
}

TEST(FleetRunner, ShardSizeDoesNotChangePerDeviceTrajectories) {
  // Different shard_size is a different fingerprint (checkpoints are not
  // interchangeable) but per-device stats must match: the exact moments and
  // cause counts are shard-independent even though sketch centroids differ.
  FleetSpec a = small_spec();
  FleetSpec b = small_spec();
  b.shard_size = 32;
  const FleetResult ra = run_fleet(a);
  const FleetResult rb = run_fleet(b);
  EXPECT_EQ(ra.aggregate.devices, rb.aggregate.devices);
  EXPECT_EQ(ra.aggregate.lifetime.mean(), rb.aggregate.lifetime.mean());
  EXPECT_EQ(ra.aggregate.lifetime.min(), rb.aggregate.lifetime.min());
  EXPECT_EQ(ra.aggregate.lifetime.max(), rb.aggregate.lifetime.max());
  EXPECT_EQ(ra.aggregate.failure_causes, rb.aggregate.failure_causes);
  ASSERT_EQ(ra.aggregate.worst.items().size(),
            rb.aggregate.worst.items().size());
  for (std::size_t i = 0; i < ra.aggregate.worst.items().size(); ++i) {
    EXPECT_EQ(ra.aggregate.worst.items()[i].id,
              rb.aggregate.worst.items()[i].id);
  }
}

TEST(FleetRunner, StopResumeProducesByteIdenticalResult) {
  const FleetSpec spec = small_spec();
  const std::string straight = fleet_result_json(spec, run_fleet(spec));

  const std::string ckpt = temp_path("fleet_test_resume.ckpt");
  std::filesystem::remove(ckpt);

  FleetOptions first;
  first.checkpoint_path = ckpt;
  first.stop_after_shards = 2;  // simulated preemption after two shards
  const FleetResult partial = run_fleet(spec, first);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.shards_done, 2u);

  FleetOptions second;
  second.checkpoint_path = ckpt;
  second.resume = true;
  second.jobs = 2;  // resume under a different job count, same bytes
  const FleetResult resumed = run_fleet(spec, second);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(fleet_result_json(spec, resumed), straight);
  std::filesystem::remove(ckpt);
}

TEST(FleetRunner, ResumeRejectsForeignCheckpoint) {
  const std::string ckpt = temp_path("fleet_test_foreign.ckpt");
  std::filesystem::remove(ckpt);

  FleetSpec spec = small_spec();
  FleetOptions write;
  write.checkpoint_path = ckpt;
  write.stop_after_shards = 1;
  (void)run_fleet(spec, write);

  FleetSpec other = spec;
  other.seed_start = 1234;  // different population
  FleetOptions resume;
  resume.checkpoint_path = ckpt;
  resume.resume = true;
  EXPECT_THROW((void)run_fleet(other, resume), std::runtime_error);
  std::filesystem::remove(ckpt);
}

TEST(FleetRunner, AttackMixIsShardingIndependent) {
  FleetSpec spec;
  spec.devices = 100;
  spec.seed_start = 3;
  spec.attack_mix = {{"uaa", 0.5}, {"zipf", 0.5}};

  // The pick must depend only on (seed_start, index).
  std::size_t uaa = 0;
  for (std::uint64_t i = 0; i < spec.devices; ++i) {
    const std::string& a = fleet_device_attack(spec, i);
    EXPECT_TRUE(a == "uaa" || a == "zipf");
    uaa += a == "uaa" ? 1 : 0;
  }
  EXPECT_GT(uaa, 25u);
  EXPECT_LT(uaa, 75u);

  FleetSpec reshard = spec;
  reshard.shard_size = 7;
  for (std::uint64_t i = 0; i < spec.devices; ++i) {
    EXPECT_EQ(fleet_device_attack(spec, i), fleet_device_attack(reshard, i));
  }
}

TEST(FleetRunner, RejectsBadSpecs) {
  FleetSpec empty;
  empty.devices = 0;
  EXPECT_THROW((void)run_fleet(empty), std::invalid_argument);

  FleetSpec bad_mix = small_spec();
  bad_mix.attack_mix = {{"uaa", -1.0}};
  EXPECT_THROW((void)run_fleet(bad_mix), std::invalid_argument);

  FleetSpec no_shard = small_spec();
  no_shard.shard_size = 0;
  EXPECT_THROW((void)run_fleet(no_shard), std::invalid_argument);
}

TEST(FleetFingerprint, CoversTrajectoryShapingFields) {
  const FleetSpec base = small_spec();
  const std::uint64_t fp = fleet_fingerprint(base);
  EXPECT_EQ(fp, fleet_fingerprint(base));  // stable

  FleetSpec seeds = base;
  seeds.seed_start = 99;
  EXPECT_NE(fleet_fingerprint(seeds), fp);

  FleetSpec count = base;
  count.devices = 97;
  EXPECT_NE(fleet_fingerprint(count), fp);

  FleetSpec shards = base;
  shards.shard_size = 32;
  EXPECT_NE(fleet_fingerprint(shards), fp);

  FleetSpec config = base;
  config.base.spare_scheme = "pcd";
  EXPECT_NE(fleet_fingerprint(config), fp);

  FleetSpec mix = base;
  mix.attack_mix = {{"uaa", 1.0}};
  EXPECT_NE(fleet_fingerprint(mix), fp);
}

TEST(ClassifyFailureCause, PrefersEndOfLifeEvent) {
  LifetimeResult result;
  result.failed = true;
  result.failure_reason = "whatever the result says";
  const std::string log =
      R"({"v":1,"type":"write","line":3})"
      "\n"
      R"({"v":1,"type":"end_of_life","cause":"all_backed_lines_worn"})"
      "\n";
  bool truncated = true;
  EXPECT_EQ(classify_failure_cause(log, result, &truncated),
            kCauseAllBackedLinesWorn);
  EXPECT_FALSE(truncated);
}

TEST(ClassifyFailureCause, TruncatedLogFallsBackToResult) {
  LifetimeResult result;
  result.failed = true;
  result.failure_reason = "unreplaceable wear-out at line 17";
  // Cap hit: the tail (including end_of_life) was dropped.
  const std::string log =
      R"({"v":1,"type":"write","line":3})"
      "\n"
      R"({"v":1,"type":"log_truncated","dropped":120})"
      "\n";
  bool truncated = false;
  EXPECT_EQ(classify_failure_cause(log, result, &truncated),
            kCauseUnreplaceableWearOut);
  EXPECT_TRUE(truncated);
}

TEST(ClassifyFailureCause, FallbackClassification) {
  LifetimeResult worn;
  worn.failed = true;
  worn.failure_reason = "all backed lines worn out";
  EXPECT_EQ(classify_failure_cause("", worn), kCauseAllBackedLinesWorn);

  LifetimeResult capped;
  capped.failed = false;
  EXPECT_EQ(classify_failure_cause("", capped), kCauseWriteCapReached);

  LifetimeResult odd;
  odd.failed = true;
  odd.failure_reason = "some novel reason";
  EXPECT_EQ(classify_failure_cause("", odd), kCauseUnknown);

  LifetimeResult garbage = odd;
  EXPECT_EQ(classify_failure_cause("{not json", garbage), kCauseUnknown);
}

TEST(ClassifyFailureCause, CountOnlyLogAgreesWithStreamingLog) {
  // The fleet hot path classifies from a count-only EventLog; it must give
  // the same answer as parsing the bytes a streaming log would have
  // written for the identical event sequence.
  const auto drive = [](EventLog& log, std::uint64_t events_before_eol) {
    for (std::uint64_t i = 0; i < events_before_eol; ++i) {
      log.set_now(static_cast<double>(i));
      log.emit("write", {{"line", static_cast<double>(i % 7)}});
    }
    log.emit("end_of_life", {{"cause", std::string_view("all_backed_lines_worn")}});
    log.finalize();
  };

  LifetimeResult result;
  result.failed = true;
  result.failure_reason = "unreplaceable wear-out at line 17";

  // Case 1: end_of_life admitted within the cap.
  {
    std::ostringstream sink;
    EventLog streaming(sink, /*max_events=*/100);
    EventLog counting(/*max_events=*/100);
    drive(streaming, 10);
    drive(counting, 10);
    bool stream_trunc = true;
    bool count_trunc = true;
    EXPECT_EQ(classify_failure_cause(sink.str(), result, &stream_trunc),
              classify_failure_cause(counting, result, &count_trunc));
    EXPECT_EQ(classify_failure_cause(counting, result),
              kCauseAllBackedLinesWorn);
    EXPECT_EQ(stream_trunc, count_trunc);
    EXPECT_FALSE(count_trunc);
  }

  // Case 2: cap hit before end_of_life — both fall back to the result.
  {
    std::ostringstream sink;
    EventLog streaming(sink, /*max_events=*/5);
    EventLog counting(/*max_events=*/5);
    drive(streaming, 10);
    drive(counting, 10);
    bool stream_trunc = false;
    bool count_trunc = false;
    EXPECT_EQ(classify_failure_cause(sink.str(), result, &stream_trunc),
              classify_failure_cause(counting, result, &count_trunc));
    EXPECT_EQ(classify_failure_cause(counting, result),
              kCauseUnreplaceableWearOut);
    EXPECT_EQ(stream_trunc, count_trunc);
    EXPECT_TRUE(count_trunc);
  }

  // Case 3: reset() rearms the count-only log for the next device.
  {
    EventLog counting(/*max_events=*/5);
    drive(counting, 10);
    EXPECT_TRUE(counting.truncated());
    counting.reset(100);
    EXPECT_FALSE(counting.truncated());
    EXPECT_TRUE(counting.end_of_life_cause().empty());
    drive(counting, 3);
    EXPECT_EQ(classify_failure_cause(counting, result),
              kCauseAllBackedLinesWorn);
  }
}

TEST(ExemplarSet, KeepsTrueExtremesAndMerges) {
  ExemplarSet worst(3, /*keep_lowest=*/true);
  ExemplarSet best(3, /*keep_lowest=*/false);
  for (std::uint64_t id = 0; id < 100; ++id) {
    const double v = static_cast<double>((id * 37) % 100);
    worst.add(id, v);
    best.add(id, v);
  }
  ASSERT_EQ(worst.items().size(), 3u);
  EXPECT_EQ(worst.items()[0].value, 0.0);
  EXPECT_EQ(worst.items()[1].value, 1.0);
  EXPECT_EQ(worst.items()[2].value, 2.0);
  EXPECT_EQ(best.items()[0].value, 99.0);

  // Merge of two halves equals the whole.
  ExemplarSet left(3, true), right(3, true);
  for (std::uint64_t id = 0; id < 50; ++id) {
    left.add(id, static_cast<double>((id * 37) % 100));
  }
  for (std::uint64_t id = 50; id < 100; ++id) {
    right.add(id, static_cast<double>((id * 37) % 100));
  }
  left.merge(right);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(left.items()[i].id, worst.items()[i].id);
    EXPECT_EQ(left.items()[i].value, worst.items()[i].value);
  }

  EXPECT_THROW(left.merge(best), std::invalid_argument);
}

TEST(ExemplarSet, TiesBreakOnDeviceId) {
  ExemplarSet s(2, true);
  s.add(9, 1.0);
  s.add(4, 1.0);
  s.add(7, 1.0);
  ASSERT_EQ(s.items().size(), 2u);
  EXPECT_EQ(s.items()[0].id, 4u);
  EXPECT_EQ(s.items()[1].id, 7u);
}

TEST(FleetAggregate, SerializeThenMergeMatchesDirectMerge) {
  const auto fill = [](FleetAggregate& agg, std::uint64_t base) {
    for (std::uint64_t d = 0; d < 40; ++d) {
      LifetimeResult r;
      r.failed = true;
      r.normalized = 0.5 + 0.01 * static_cast<double>(d);
      r.user_writes = 1000 + d;
      r.wear_gini = 0.1;
      agg.add(base + d, r,
              std::string(d % 2 ? kCauseAllBackedLinesWorn
                                : kCauseUnreplaceableWearOut),
              /*log_truncated=*/d % 7 == 0);
    }
    agg.compress();
  };

  FleetAggregate a, b;
  fill(a, 0);
  fill(b, 1000);

  FleetAggregate direct = a;
  direct.merge(b);

  const auto round_trip = [](const FleetAggregate& agg) {
    StateWriter w;
    agg.save_state(w);
    FleetAggregate out;
    StateReader r(w.buffer());
    EXPECT_TRUE(out.load_state(r).ok());
    EXPECT_TRUE(r.exhausted());
    return out;
  };
  FleetAggregate reloaded = round_trip(a);
  reloaded.merge(round_trip(b));

  StateWriter w1, w2;
  direct.save_state(w1);
  reloaded.save_state(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
  EXPECT_EQ(direct.devices, 80u);
  EXPECT_EQ(direct.truncated_logs, 12u);
  EXPECT_EQ(direct.failure_causes.at(std::string(kCauseAllBackedLinesWorn)),
            40u);
}

TEST(FleetResultJson, ShapeAndDeterminism) {
  FleetSpec spec = small_spec();
  spec.devices = 32;
  const FleetResult result = run_fleet(spec);
  const std::string json = fleet_result_json(spec, result);
  EXPECT_EQ(json, fleet_result_json(spec, result));
  EXPECT_EQ(json.back(), '\n');

  // Spot-check the documented top-level shape.
  EXPECT_NE(json.find("\"type\":\"fleet_result\""), std::string::npos);
  EXPECT_NE(json.find("\"devices\":32"), std::string::npos);
  EXPECT_NE(json.find("\"lifetime\":"), std::string::npos);
  EXPECT_NE(json.find("\"failure_causes\":"), std::string::npos);
  EXPECT_NE(json.find("\"worst\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(FleetRunner, WearGiniIsTrackedForEventEngine) {
  const FleetSpec spec = small_spec();
  const FleetResult result = run_fleet(spec);
  // The event engine reports per-line wear, so every device contributes.
  EXPECT_EQ(result.aggregate.wear_gini.count(), spec.devices);
  EXPECT_GE(result.aggregate.wear_gini.min(), 0.0);
  EXPECT_LE(result.aggregate.wear_gini.max(), 1.0);
}


TEST(FleetSamplingContract, WeakestContractAcrossMixWins) {
  FleetSpec spec = small_spec();
  EXPECT_EQ(fleet_sampling_contract(spec), BatchContract::kBitIdentical);
  spec.base.attack = "hotspot";
  EXPECT_EQ(fleet_sampling_contract(spec), BatchContract::kMultisetExact);
  spec.base.attack = "zipf";
  EXPECT_EQ(fleet_sampling_contract(spec),
            BatchContract::kDistributionEquivalent);
  // A mix overrides base.attack; the weakest member's contract governs.
  spec.base.attack = "uaa";
  spec.attack_mix = {{"uaa", 0.9}, {"bpa", 0.1}};
  EXPECT_EQ(fleet_sampling_contract(spec), BatchContract::kBitIdentical);
  spec.attack_mix.push_back({"zipf", 0.1});
  EXPECT_EQ(fleet_sampling_contract(spec),
            BatchContract::kDistributionEquivalent);
}

TEST(FleetFingerprint, FastpathFoldsInOnlyForStochasticSampling) {
  // Bit-identical populations interchange checkpoints across fastpath
  // modes (same trajectories), so the flag must NOT shift the fingerprint.
  FleetSpec uaa = small_spec();
  uaa.base.mode = SimulationMode::kStochastic;
  FleetSpec uaa_off = uaa;
  uaa_off.base.fastpath = false;
  EXPECT_EQ(fleet_fingerprint(uaa), fleet_fingerprint(uaa_off));

  // Distribution-equivalent stochastic populations must refuse cross-mode
  // resume: the flag IS part of the fingerprint.
  FleetSpec zipf = small_spec();
  zipf.base.attack = "zipf";
  zipf.base.mode = SimulationMode::kStochastic;
  FleetSpec zipf_off = zipf;
  zipf_off.base.fastpath = false;
  EXPECT_NE(fleet_fingerprint(zipf), fleet_fingerprint(zipf_off));

  // In event mode there is no sampling at all: flag irrelevant again.
  FleetSpec zipf_event = zipf;
  zipf_event.base.mode = SimulationMode::kUniformEvent;
  FleetSpec zipf_event_off = zipf_event;
  zipf_event_off.base.fastpath = false;
  EXPECT_EQ(fleet_fingerprint(zipf_event), fleet_fingerprint(zipf_event_off));
}

TEST(FleetResultJson, SpecCarriesFastpathAndSamplingContract) {
  FleetSpec spec = small_spec();
  FleetOptions options;
  const std::string json = fleet_result_json(spec, run_fleet(spec, options));
  EXPECT_NE(json.find("\"fastpath\":true"), std::string::npos);
  EXPECT_NE(json.find("\"sampling_contract\":\"bit_identical\""),
            std::string::npos);
  spec.base.attack = "zipf";
  spec.base.fastpath = false;
  const std::string json_zipf =
      fleet_result_json(spec, run_fleet(spec, options));
  EXPECT_NE(json_zipf.find("\"fastpath\":false"), std::string::npos);
  EXPECT_NE(
      json_zipf.find("\"sampling_contract\":\"distribution_equivalent\""),
      std::string::npos);
}

}  // namespace
}  // namespace nvmsec
