// Determinism contract for detector-enabled runs: switching --jobs,
// toggling the batched fast path (within the bit-identical contract), or
// interrupting and resuming must all leave the event log — including every
// detect_window / alarm / cadence_change event — byte-identical. This is
// what makes detector post-mortems and the adaptive cadence trail
// trustworthy records of the run they describe.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/session.h"
#include "sim/experiment.h"
#include "sim/parallel.h"

namespace nvmsec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Detector-enabled scaled stochastic base: small windows so even short
/// runs close several, adaptive cadence on.
ExperimentConfig detect_config() {
  ExperimentConfig config = scaled_stochastic_config(512, 32, 300.0);
  config.spare_scheme = "maxwe";
  config.wear_leveler = "startgap";
  config.detect = true;
  config.detector.window_writes = 1024;
  config.detector.coarse_buckets = 32;
  config.detector.fine_buckets = 128;
  config.adaptive = true;
  return config;
}

std::vector<std::string> event_bytes(const ExperimentConfig& base,
                                     const std::vector<std::uint64_t>& seeds,
                                     std::size_t jobs) {
  std::vector<std::ostringstream> outs(seeds.size());
  std::vector<std::unique_ptr<EventLog>> logs;
  std::vector<ExperimentConfig> configs(seeds.size(), base);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    logs.push_back(std::make_unique<EventLog>(outs[i]));
    configs[i].seed = seeds[i];
    configs[i].observer.events = logs[i].get();
  }
  ParallelOptions options;
  options.jobs = jobs;
  run_experiments(configs, options);
  std::vector<std::string> bytes;
  bytes.reserve(seeds.size());
  for (std::ostringstream& out : outs) bytes.push_back(out.str());
  return bytes;
}

std::string single_run_bytes(const ExperimentConfig& base) {
  std::ostringstream out;
  EventLog log(out);
  ExperimentConfig config = base;
  config.observer.events = &log;
  run_experiment(config);
  return out.str();
}

TEST(DetectDeterminismTest, DetectorRunSerialVsParallel) {
  ExperimentConfig config = detect_config();
  config.attack = "mixed";
  config.mixed_phases = "zipf:1k,uaa:0";

  const std::vector<std::uint64_t> seeds{7, 8, 9};
  const std::vector<std::string> serial = event_bytes(config, seeds, 1);
  const std::vector<std::string> parallel = event_bytes(config, seeds, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    // The log must actually contain detector traffic, or this test proves
    // nothing about it.
    EXPECT_NE(serial[i].find("\"detect_window\""), std::string::npos);
    EXPECT_NE(serial[i].find("\"alarm_raised\""), std::string::npos);
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << seeds[i];
  }
}

TEST(DetectDeterminismTest, FastpathToggleIsByteIdenticalWithinContract) {
  // A cyclic schedule of two bit-identical phases: the fast path must
  // replay the exact per-write stream (including detector window math via
  // the analytic run updates), so the logs agree byte for byte.
  ExperimentConfig config = detect_config();
  config.attack = "mixed";
  config.mixed_phases = "uaa:2k,bpa:2k";
  config.seed = 21;

  ExperimentConfig fast = config;
  fast.fastpath = true;
  ExperimentConfig slow = config;
  slow.fastpath = false;

  const std::string fast_bytes = single_run_bytes(fast);
  const std::string slow_bytes = single_run_bytes(slow);
  EXPECT_FALSE(fast_bytes.empty());
  EXPECT_NE(fast_bytes.find("\"cadence_change\""), std::string::npos);
  EXPECT_EQ(fast_bytes, slow_bytes);
}

TEST(DetectDeterminismTest, InterruptedResumeIsByteIdentical) {
  const std::string ref_events = temp_path("detdet_ref.events.jsonl");
  const std::string res_events = temp_path("detdet_res.events.jsonl");
  const std::string ref_ckpt = temp_path("detdet_ref.ckpt");
  const std::string res_ckpt = temp_path("detdet_res.ckpt");
  for (const std::string& p : {ref_events, res_events, ref_ckpt, res_ckpt}) {
    std::filesystem::remove(p);
  }

  ExperimentConfig base = detect_config();
  base.attack = "mixed";
  base.mixed_phases = "zipf:1k,uaa:0";
  base.seed = 11;
  base.checkpoint_interval = 2000;

  // Reference: uninterrupted, checkpointing at the same cadence.
  {
    ExperimentConfig config = base;
    config.checkpoint_out = ref_ckpt;
    ObsConfig obs_config;
    obs_config.events_path = ref_events;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }

  // Interrupted: the cap lands mid-detector-window AND mid-alarm (the UAA
  // phase starts at 1k, the cap at 5k), then resumed to completion — the
  // detector histograms, hysteresis state, and adaptive ladder all have to
  // ride the checkpoint exactly.
  {
    ExperimentConfig config = base;
    config.checkpoint_out = res_ckpt;
    config.max_user_writes = 5000;
    ObsConfig obs_config;
    obs_config.events_path = res_events;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }
  {
    ExperimentConfig config = base;
    config.checkpoint_out = res_ckpt;
    config.resume_from = res_ckpt;
    ObsConfig obs_config;
    obs_config.events_path = res_events;
    obs_config.resume = true;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }

  const std::string ref = slurp(ref_events);
  const std::string res = slurp(res_events);
  EXPECT_FALSE(ref.empty());
  EXPECT_NE(ref.find("\"detect_window\""), std::string::npos);
  EXPECT_EQ(ref, res);

  for (const std::string& p : {ref_events, res_events, ref_ckpt, res_ckpt}) {
    std::filesystem::remove(p);
  }
}

TEST(DetectDeterminismTest, DetectorStatsRideTheResult) {
  // The LifetimeResult detector stats must agree between a straight run
  // and a crash/resume of the same config (they are part of the record,
  // not recomputed from the log).
  ExperimentConfig base = detect_config();
  base.attack = "uaa";
  base.seed = 5;

  const LifetimeResult straight = run_experiment(base);
  EXPECT_GT(straight.windows_observed, 0u);
  EXPECT_GT(straight.anomalous_windows, 0u);
  EXPECT_GT(straight.alarms_raised, 0u);
  EXPECT_GT(straight.cadence_changes, 0u);

  const std::string ckpt = temp_path("detdet_stats.ckpt");
  std::filesystem::remove(ckpt);
  {
    ExperimentConfig config = base;
    config.checkpoint_out = ckpt;
    config.checkpoint_interval = 2000;
    config.max_user_writes = 5000;
    run_experiment(config);
  }
  ExperimentConfig config = base;
  config.resume_from = ckpt;
  const LifetimeResult resumed = run_experiment(config);
  EXPECT_EQ(resumed.windows_observed, straight.windows_observed);
  EXPECT_EQ(resumed.anomalous_windows, straight.anomalous_windows);
  EXPECT_EQ(resumed.alarms_raised, straight.alarms_raised);
  EXPECT_EQ(resumed.windows_in_alarm, straight.windows_in_alarm);
  EXPECT_EQ(resumed.cadence_changes, straight.cadence_changes);
  EXPECT_EQ(resumed.user_writes, straight.user_writes);
  std::filesystem::remove(ckpt);
}

}  // namespace
}  // namespace nvmsec
