#include "sim/multi_bank.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/parallel.h"

namespace nvmsec {
namespace {

ExperimentConfig bank_config() {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(2048, 128);
  c.endurance.endurance_at_mean = 1000.0;
  c.spare_scheme = "maxwe";
  c.seed = 11;
  return c;
}

TEST(MultiBankTest, ZeroBanksRejected) {
  EXPECT_THROW(run_multi_bank(bank_config(), 0), std::invalid_argument);
}

TEST(MultiBankTest, SingleBankMatchesPlainExperiment) {
  const ExperimentConfig c = bank_config();
  const MultiBankResult multi = run_multi_bank(c, 1);
  const double single = run_experiment(c).normalized;
  ASSERT_EQ(multi.per_bank.size(), 1u);
  EXPECT_DOUBLE_EQ(multi.system_normalized, single);
  EXPECT_DOUBLE_EQ(multi.mean_bank, single);
  EXPECT_EQ(multi.weakest_bank, 0u);
}

TEST(MultiBankTest, SystemIsMinimumOfBanks) {
  const MultiBankResult r = run_multi_bank(bank_config(), 6);
  ASSERT_EQ(r.per_bank.size(), 6u);
  const double min = *std::min_element(r.per_bank.begin(), r.per_bank.end());
  const double max = *std::max_element(r.per_bank.begin(), r.per_bank.end());
  EXPECT_DOUBLE_EQ(r.system_normalized, min);
  EXPECT_DOUBLE_EQ(r.max_bank, max);
  EXPECT_DOUBLE_EQ(r.per_bank[r.weakest_bank], min);
  EXPECT_LE(r.system_normalized, r.mean_bank);
  EXPECT_LE(r.mean_bank, r.max_bank);
}

TEST(MultiBankTest, BanksUseIndependentEnduranceDraws) {
  const MultiBankResult r = run_multi_bank(bank_config(), 4);
  // All four banks drawing identical lifetimes would mean the seeds were
  // not varied.
  EXPECT_NE(r.per_bank[0], r.per_bank[1]);
}

TEST(MultiBankTest, AggregateTiesResolveToFirstBankAtMinimum) {
  const MultiBankResult r =
      aggregate_multi_bank({0.5, 0.3, 0.4, 0.3, 0.3});
  EXPECT_DOUBLE_EQ(r.system_normalized, 0.3);
  EXPECT_EQ(r.weakest_bank, 1u);  // first of the three tied banks
  EXPECT_DOUBLE_EQ(r.max_bank, 0.5);
  EXPECT_THROW(aggregate_multi_bank({}), std::invalid_argument);
}

TEST(MultiBankTest, IdenticalBanksTieToBankZero) {
  // A variation-free endurance model gives every bank the same lifetime
  // regardless of its seed: all banks tie, and the documented rule says the
  // FIRST one is reported.
  ExperimentConfig c = bank_config();
  c.endurance.current_stddev_ma = 0.0;
  const MultiBankResult r = run_multi_bank(c, 4);
  for (double bank : r.per_bank) {
    EXPECT_DOUBLE_EQ(bank, r.per_bank[0]);
  }
  EXPECT_EQ(r.weakest_bank, 0u);
}

TEST(MultiBankTest, ParallelPathMatchesSerialExactly) {
  const ExperimentConfig c = bank_config();
  const MultiBankResult serial = run_multi_bank(c, 6);
  for (std::size_t jobs : {1u, 3u, 8u}) {
    ParallelOptions options;
    options.jobs = jobs;
    const MultiBankResult parallel = run_multi_bank(c, 6, options);
    ASSERT_EQ(parallel.per_bank.size(), serial.per_bank.size());
    for (std::size_t b = 0; b < serial.per_bank.size(); ++b) {
      EXPECT_DOUBLE_EQ(parallel.per_bank[b], serial.per_bank[b])
          << "jobs " << jobs << " bank " << b;
    }
    EXPECT_DOUBLE_EQ(parallel.system_normalized, serial.system_normalized);
    EXPECT_EQ(parallel.weakest_bank, serial.weakest_bank);
    EXPECT_DOUBLE_EQ(parallel.mean_bank, serial.mean_bank);
    EXPECT_DOUBLE_EQ(parallel.max_bank, serial.max_bank);
  }
}

TEST(MultiBankTest, ParallelTieAlsoResolvesToBankZero) {
  ExperimentConfig c = bank_config();
  c.endurance.current_stddev_ma = 0.0;
  ParallelOptions options;
  options.jobs = 4;
  // Even though banks complete in arbitrary order, aggregation is a
  // bank-order pass, so the tie still lands on bank 0.
  EXPECT_EQ(run_multi_bank(c, 4, options).weakest_bank, 0u);
}

TEST(MultiBankTest, MoreBanksNeverRaiseSystemLifetime) {
  const ExperimentConfig c = bank_config();
  double prev = 1e9;
  for (std::uint32_t banks : {1u, 2u, 4u, 8u}) {
    // Same seed base: the bank set is a superset of the previous one, so
    // the minimum is monotone non-increasing.
    const double system = run_multi_bank(c, banks).system_normalized;
    EXPECT_LE(system, prev);
    prev = system;
  }
}

}  // namespace
}  // namespace nvmsec
