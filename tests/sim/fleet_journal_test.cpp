// FleetJournal: append/replay round-trip, torn-tail self-healing, and the
// refusal paths (foreign fingerprint, legacy MXWECKPT files, bad magic).
#include "sim/fleet_journal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "util/status.h"

namespace nvmsec {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  fs::remove(path);
  return path;
}

std::vector<std::uint8_t> payload_of(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> p;
  for (int b : bytes) p.push_back(static_cast<std::uint8_t>(b));
  return p;
}

void write_records(const std::string& path, std::uint64_t fingerprint,
                   bool truncate,
                   const std::vector<FleetJournalRecord>& records) {
  FleetJournal journal;
  ASSERT_TRUE(journal.open(path, fingerprint, truncate).ok());
  for (const auto& rec : records) {
    ASSERT_TRUE(journal.append(rec.shard_index, rec.payload).ok());
  }
}

TEST(FleetJournal, AppendReplayRoundTrip) {
  const std::string path = temp_path("journal_roundtrip.jrnl");
  const std::uint64_t fp = 0xDEADBEEFCAFEF00Dull;
  std::vector<FleetJournalRecord> written;
  written.push_back({0, payload_of({1, 2, 3})});
  written.push_back({3, payload_of({0xFF, 0x00, 0x7F, 0x80})});
  written.push_back({1, payload_of({42})});

  FleetJournal journal;
  ASSERT_TRUE(journal.open(path, fp, /*truncate=*/true).ok());
  std::uint64_t expected_bytes = 20;  // header
  for (const auto& rec : written) {
    ASSERT_TRUE(journal.append(rec.shard_index, rec.payload).ok());
    expected_bytes += 16 + rec.payload.size();
  }
  EXPECT_EQ(journal.bytes_written(), expected_bytes);
  EXPECT_EQ(fs::file_size(path), expected_bytes);

  auto replayed = FleetJournal::replay(path, fp);
  ASSERT_TRUE(replayed.ok()) << replayed.status().to_string();
  const auto& records = replayed.value();
  ASSERT_EQ(records.size(), written.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].shard_index, written[i].shard_index);
    EXPECT_EQ(records[i].payload, written[i].payload);
  }
}

TEST(FleetJournal, ReopenAppendsAfterExistingRecords) {
  const std::string path = temp_path("journal_reopen.jrnl");
  const std::uint64_t fp = 7;
  write_records(path, fp, /*truncate=*/true, {{0, payload_of({10})}});
  // A resumed campaign reopens without truncating and appends; a shard
  // index may repeat — replay reports file order, the consumer takes the
  // last record per index.
  write_records(path, fp, /*truncate=*/false,
                {{1, payload_of({20})}, {0, payload_of({30})}});

  auto replayed = FleetJournal::replay(path, fp);
  ASSERT_TRUE(replayed.ok()) << replayed.status().to_string();
  const auto& records = replayed.value();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].shard_index, 0u);
  EXPECT_EQ(records[0].payload, payload_of({10}));
  EXPECT_EQ(records[1].shard_index, 1u);
  EXPECT_EQ(records[2].shard_index, 0u);
  EXPECT_EQ(records[2].payload, payload_of({30}));
}

TEST(FleetJournal, TornTailIsTruncatedInPlace) {
  const std::string path = temp_path("journal_torn.jrnl");
  const std::uint64_t fp = 99;
  write_records(path, fp, /*truncate=*/true,
                {{0, payload_of({1, 2})}, {1, payload_of({3, 4, 5})}});
  const std::uintmax_t good_size = fs::file_size(path);

  // SIGKILL mid-append: half a record lands on disk.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {0x09, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00};
    out.write(torn, sizeof(torn));
  }
  ASSERT_GT(fs::file_size(path), good_size);

  auto replayed = FleetJournal::replay(path, fp);
  ASSERT_TRUE(replayed.ok()) << replayed.status().to_string();
  ASSERT_EQ(replayed.value().size(), 2u);
  EXPECT_EQ(replayed.value()[1].payload, payload_of({3, 4, 5}));
  // The tail is gone from disk, so the next append splices cleanly.
  EXPECT_EQ(fs::file_size(path), good_size);

  write_records(path, fp, /*truncate=*/false, {{2, payload_of({6})}});
  auto again = FleetJournal::replay(path, fp);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().size(), 3u);
  EXPECT_EQ(again.value()[2].shard_index, 2u);
}

TEST(FleetJournal, CrcFailureDropsTheTail) {
  const std::string path = temp_path("journal_crc.jrnl");
  const std::uint64_t fp = 5;
  write_records(path, fp, /*truncate=*/true,
                {{0, payload_of({1})}, {1, payload_of({2})}});
  const std::uintmax_t full_size = fs::file_size(path);
  // Flip one payload byte of the second record (header 20 + record one
  // 16+1 = offset 37; second record's payload byte sits at 37 + 12).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(37 + 12);
    f.put('\x7E');
  }
  auto replayed = FleetJournal::replay(path, fp);
  ASSERT_TRUE(replayed.ok()) << replayed.status().to_string();
  ASSERT_EQ(replayed.value().size(), 1u);
  EXPECT_EQ(replayed.value()[0].payload, payload_of({1}));
  EXPECT_LT(fs::file_size(path), full_size);
}

TEST(FleetJournal, EmptyJournalReplaysToNoRecords) {
  const std::string path = temp_path("journal_empty.jrnl");
  write_records(path, 11, /*truncate=*/true, {});
  auto replayed = FleetJournal::replay(path, 11);
  ASSERT_TRUE(replayed.ok()) << replayed.status().to_string();
  EXPECT_TRUE(replayed.value().empty());
}

TEST(FleetJournal, MissingFileIsNotFound) {
  auto replayed =
      FleetJournal::replay(temp_path("journal_missing.jrnl"), 1);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kNotFound);
}

TEST(FleetJournal, ForeignFingerprintIsRefused) {
  const std::string path = temp_path("journal_foreign.jrnl");
  write_records(path, 1234, /*truncate=*/true, {{0, payload_of({1})}});
  auto replayed = FleetJournal::replay(path, 5678);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(replayed.status().message().find("different population"),
            std::string::npos);
}

TEST(FleetJournal, LegacyCheckpointIsVersionMismatch) {
  const std::string path = temp_path("journal_legacy.jrnl");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
    const std::string padding(32, '\0');
    out.write(padding.data(),
              static_cast<std::streamsize>(padding.size()));
  }
  auto replayed = FleetJournal::replay(path, 1);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kVersionMismatch);
  EXPECT_NE(replayed.status().message().find("MXWECKPT"), std::string::npos);
}

TEST(FleetJournal, UnknownMagicIsCorruption) {
  const std::string path = temp_path("journal_garbage.jrnl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a journal";
  }
  auto replayed = FleetJournal::replay(path, 1);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kCorruption);
}

TEST(FleetJournal, FutureVersionIsRefused) {
  const std::string path = temp_path("journal_future.jrnl");
  write_records(path, 3, /*truncate=*/true, {{0, payload_of({1})}});
  {
    // Bump the version field (offset 8) past what this build reads.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    f.put('\x7F');
  }
  auto replayed = FleetJournal::replay(path, 3);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kVersionMismatch);
}

TEST(FleetJournal, AppendBeforeOpenFails) {
  FleetJournal journal;
  EXPECT_FALSE(journal.is_open());
  const Status s = journal.append(0, payload_of({1}));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace nvmsec
