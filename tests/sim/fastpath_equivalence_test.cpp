// The batched fast path's equivalence contract, per attack class:
//
//   * kBitIdentical (uaa/bpa): with and without --no-fastpath a run must
//     produce the same LifetimeResult, the same decision-event bytes, the
//     same snapshot series, and the same checkpoint payloads — across the
//     full attack x wear-leveler x spare-scheme grid, with a DRAM buffer,
//     under metadata fault injection, and across cross-mode resume.
//   * kMultisetExact (hotspot): the batched run issues the exact write
//     multiset of the per-write run; only intra-chunk ordering may differ,
//     so lifetimes sit in a tight band (and ws=1 stays bit-identical).
//   * kDistributionEquivalent (zipf/random): the batched run draws count
//     vectors from a dedicated RNG substream — same law, different stream.
//     Each mode must be individually deterministic, the lifetimes must
//     agree within a sampling band, and across many seeds the two modes'
//     lifetime distributions must pass a two-sample KS test.
//
// Combinations where the count-vector path cannot engage (a wear leveler's
// remap horizon below the minimum chunk, or a spare scheme with uncacheable
// resolves) remain bit-identical even for stochastic attacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "obs/event_log.h"
#include "obs/session.h"
#include "obs/snapshot.h"
#include "sim/experiment.h"

namespace nvmsec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Small-but-representative configuration: regions carry distinct
/// endurances, every scheme has a non-trivial spare budget, and the cap
/// bounds combinations that would otherwise sweep forever.
ExperimentConfig base_config() {
  ExperimentConfig config = scaled_stochastic_config(256, 16, 300.0);
  config.spare_fraction = 0.25;
  config.swr_fraction = 0.5;
  config.max_user_writes = 120'000;
  return config;
}

struct RunOutput {
  LifetimeResult result;
  std::string events;
  std::string snapshots;
};

RunOutput run_once(ExperimentConfig config, bool fastpath,
                   WriteCount snapshot_interval = 0) {
  config.fastpath = fastpath;
  std::ostringstream events_out;
  EventLog events(events_out);
  config.observer.events = &events;
  std::ostringstream snap_out;
  std::unique_ptr<SnapshotEmitter> snapshots;
  if (snapshot_interval > 0) {
    snapshots = std::make_unique<SnapshotEmitter>(snap_out, snapshot_interval);
    config.observer.snapshots = snapshots.get();
  }
  RunOutput out;
  out.result = run_experiment(config);
  out.events = events_out.str();
  out.snapshots = snap_out.str();
  return out;
}

void expect_identical(const RunOutput& fast, const RunOutput& slow,
                      const std::string& label) {
  EXPECT_EQ(fast.result.user_writes, slow.result.user_writes) << label;
  EXPECT_EQ(fast.result.overhead_writes, slow.result.overhead_writes) << label;
  EXPECT_EQ(fast.result.absorbed_writes, slow.result.absorbed_writes) << label;
  EXPECT_EQ(fast.result.device_writes, slow.result.device_writes) << label;
  EXPECT_EQ(fast.result.line_deaths, slow.result.line_deaths) << label;
  EXPECT_EQ(fast.result.failed, slow.result.failed) << label;
  EXPECT_EQ(fast.result.failure_reason, slow.result.failure_reason) << label;
  EXPECT_DOUBLE_EQ(fast.result.normalized, slow.result.normalized) << label;
  EXPECT_FALSE(fast.events.empty()) << label;
  EXPECT_EQ(fast.events, slow.events) << label;
  EXPECT_EQ(fast.snapshots, slow.snapshots) << label;
}

/// Band check for distribution-equivalent combinations: both modes finish,
/// and the lifetimes agree within `tol` relative (sampling noise only).
void expect_band(const RunOutput& fast, const RunOutput& slow,
                 const std::string& label, double tol) {
  EXPECT_FALSE(fast.events.empty()) << label;
  ASSERT_GT(slow.result.user_writes, 0u) << label;
  const double ratio = static_cast<double>(fast.result.user_writes) /
                       static_cast<double>(slow.result.user_writes);
  EXPECT_NEAR(ratio, 1.0, tol)
      << label << " fast=" << fast.result.user_writes
      << " slow=" << slow.result.user_writes;
}

/// Does the count-vector path engage for this combination? It needs the
/// never-remapping horizon (any real wear leveler's swap cadence is far
/// below the minimum chunk) and a cacheable resolve (freep's is not).
bool counts_path_engages(const ExperimentConfig& config) {
  return config.wear_leveler == "none" && config.spare_scheme != "freep" &&
         config.dram_buffer_lines == 0;
}

// One test per attack keeps failures attributable and lets ctest schedule
// them; each sweeps the full wear-leveler x spare-scheme grid. Stochastic
// attacks get band + per-mode-determinism checks exactly where the count
// path engages, bit-identity everywhere else. Hotspot's default working
// set (one line) needs no RNG even when batched, so it stays bit-identical
// across the whole grid; its multi-line band lives in its own test below.
void sweep_attack(const std::string& attack) {
  const bool distribution_equivalent =
      attack_batch_contract(attack) == BatchContract::kDistributionEquivalent;
  for (const std::string wl : {"none", "startgap", "tlsr", "pcms", "bwl",
                               "agebased", "twl", "wawl"}) {
    for (const std::string spare : {"none", "pcd", "ps", "freep", "maxwe"}) {
      ExperimentConfig config = base_config();
      config.attack = attack;
      config.wear_leveler = wl;
      config.spare_scheme = spare;
      const std::string label = attack + "/" + wl + "/" + spare;
      const RunOutput fast = run_once(config, /*fastpath=*/true);
      const RunOutput slow = run_once(config, /*fastpath=*/false);
      if (distribution_equivalent && counts_path_engages(config)) {
        const RunOutput fast_again = run_once(config, /*fastpath=*/true);
        expect_identical(fast, fast_again, label + "/fast-determinism");
        const RunOutput slow_again = run_once(config, /*fastpath=*/false);
        expect_identical(slow, slow_again, label + "/perwrite-determinism");
        expect_band(fast, slow, label, /*tol=*/0.25);
      } else {
        expect_identical(fast, slow, label);
      }
    }
  }
}

TEST(FastPathEquivalenceTest, UaaMatrix) { sweep_attack("uaa"); }
TEST(FastPathEquivalenceTest, BpaMatrix) { sweep_attack("bpa"); }
TEST(FastPathEquivalenceTest, ZipfMatrix) { sweep_attack("zipf"); }
TEST(FastPathEquivalenceTest, HotspotMatrix) { sweep_attack("hotspot"); }
TEST(FastPathEquivalenceTest, RandomMatrix) { sweep_attack("random"); }

TEST(FastPathEquivalenceTest, SnapshotSeriesIsByteIdentical) {
  for (const std::string attack : {"uaa", "bpa"}) {
    ExperimentConfig config = base_config();
    config.attack = attack;
    config.wear_leveler = "startgap";
    config.spare_scheme = "maxwe";
    const RunOutput fast =
        run_once(config, /*fastpath=*/true, /*snapshot_interval=*/700);
    const RunOutput slow =
        run_once(config, /*fastpath=*/false, /*snapshot_interval=*/700);
    EXPECT_FALSE(fast.snapshots.empty());
    expect_identical(fast, slow, attack + "/snapshots");
  }
}

TEST(FastPathEquivalenceTest, DramBufferRunsAgree) {
  ExperimentConfig config = base_config();
  config.attack = "bpa";
  config.wear_leveler = "startgap";
  config.spare_scheme = "maxwe";
  config.dram_buffer_lines = 16;
  config.max_user_writes = 60'000;
  const RunOutput fast = run_once(config, /*fastpath=*/true);
  const RunOutput slow = run_once(config, /*fastpath=*/false);
  expect_identical(fast, slow, "buffered");
  EXPECT_GT(fast.result.absorbed_writes, 0u);
}

TEST(FastPathEquivalenceTest, MetadataFaultInjectionRunsAgree) {
  ExperimentConfig config = base_config();
  config.attack = "uaa";
  config.wear_leveler = "startgap";
  config.spare_scheme = "maxwe";
  config.fault.metadata.flip_interval = 500;
  const RunOutput fast = run_once(config, /*fastpath=*/true);
  const RunOutput slow = run_once(config, /*fastpath=*/false);
  expect_identical(fast, slow, "metadata-faults");
}

TEST(FastPathEquivalenceTest, DeviceFaultPlanRunsAgree) {
  ExperimentConfig config = base_config();
  config.attack = "uaa";
  config.wear_leveler = "pcms";
  config.spare_scheme = "maxwe";
  config.fault.device.early_death_lines = 8;
  config.fault.device.early_death_fraction = 0.3;
  const RunOutput fast = run_once(config, /*fastpath=*/true);
  const RunOutput slow = run_once(config, /*fastpath=*/false);
  expect_identical(fast, slow, "device-faults");
}

TEST(FastPathEquivalenceTest, CheckpointPayloadsAreBitIdentical) {
  const std::string fast_ckpt = temp_path("fastpath_eq_fast.ckpt");
  const std::string slow_ckpt = temp_path("fastpath_eq_slow.ckpt");
  std::filesystem::remove(fast_ckpt);
  std::filesystem::remove(slow_ckpt);

  ExperimentConfig config = base_config();
  config.attack = "uaa";
  config.wear_leveler = "startgap";
  config.spare_scheme = "maxwe";
  config.checkpoint_interval = 3'000;

  ExperimentConfig fast_config = config;
  fast_config.fastpath = true;
  fast_config.checkpoint_out = fast_ckpt;
  ExperimentConfig slow_config = config;
  slow_config.fastpath = false;
  slow_config.checkpoint_out = slow_ckpt;
  run_experiment(fast_config);
  run_experiment(slow_config);

  const std::string fast_bytes = slurp(fast_ckpt);
  const std::string slow_bytes = slurp(slow_ckpt);
  EXPECT_FALSE(fast_bytes.empty());
  // Same fingerprint, same progress counters, same RNG stream, same
  // component state: the final checkpoint file is byte-for-byte the same.
  EXPECT_EQ(fast_bytes, slow_bytes);

  std::filesystem::remove(fast_ckpt);
  std::filesystem::remove(slow_ckpt);
}

TEST(FastPathEquivalenceTest, CrossModeResumeIsBitIdentical) {
  // A checkpoint written by the fast path resumes under the per-write path
  // (and vice versa), landing on the per-write reference's event bytes —
  // the fastpath flag is deliberately outside the config fingerprint.
  const std::string ref_events = temp_path("fastpath_eq_ref.events.jsonl");
  const std::string ref_ckpt = temp_path("fastpath_eq_ref.ckpt");

  ExperimentConfig base = base_config();
  base.attack = "uaa";
  base.wear_leveler = "startgap";
  base.spare_scheme = "maxwe";
  base.checkpoint_interval = 2'000;

  std::filesystem::remove(ref_events);
  std::filesystem::remove(ref_ckpt);
  {
    ExperimentConfig config = base;
    config.fastpath = false;
    config.checkpoint_out = ref_ckpt;
    ObsConfig obs_config;
    obs_config.events_path = ref_events;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }
  const std::string reference = slurp(ref_events);
  ASSERT_FALSE(reference.empty());

  for (const bool first_fast : {true, false}) {
    const std::string events = temp_path("fastpath_eq_res.events.jsonl");
    const std::string ckpt = temp_path("fastpath_eq_res.ckpt");
    std::filesystem::remove(events);
    std::filesystem::remove(ckpt);
    {
      ExperimentConfig config = base;
      config.fastpath = first_fast;
      config.checkpoint_out = ckpt;
      config.max_user_writes = 7'000;  // interrupt mid-run
      ObsConfig obs_config;
      obs_config.events_path = events;
      ObsSession session(obs_config);
      config.observer = session.observer();
      run_experiment(config);
      session.finalize();
    }
    {
      ExperimentConfig config = base;
      config.fastpath = !first_fast;  // switch modes across the resume
      config.checkpoint_out = ckpt;
      config.resume_from = ckpt;
      ObsConfig obs_config;
      obs_config.events_path = events;
      obs_config.resume = true;
      ObsSession session(obs_config);
      config.observer = session.observer();
      run_experiment(config);
      session.finalize();
    }
    EXPECT_EQ(slurp(events), reference)
        << (first_fast ? "fast->perwrite" : "perwrite->fast");
    std::filesystem::remove(events);
    std::filesystem::remove(ckpt);
  }

  std::filesystem::remove(ref_events);
  std::filesystem::remove(ref_ckpt);
}


TEST(FastPathEquivalenceTest, HotspotWorkingSetMultisetBand) {
  // A multi-line hotspot batches deterministic count vectors (no RNG):
  // the write multiset is exact, so the only divergence from per-write is
  // intra-chunk ordering, and the lifetimes sit in a tight band.
  ExperimentConfig config = base_config();
  config.attack = "hotspot";
  config.hotspot_working_set = 8;
  config.wear_leveler = "none";
  config.spare_scheme = "maxwe";
  const RunOutput fast = run_once(config, /*fastpath=*/true);
  const RunOutput fast_again = run_once(config, /*fastpath=*/true);
  expect_identical(fast, fast_again, "hotspot-ws8/determinism");
  const RunOutput slow = run_once(config, /*fastpath=*/false);
  expect_band(fast, slow, "hotspot-ws8", /*tol=*/0.15);
}

// Two-sample Kolmogorov–Smirnov over per-seed lifetimes: the batched and
// per-write modes draw from different RNG streams but must follow the same
// law. D_crit = c(alpha) * sqrt((n+m)/(n*m)) with c(0.01) = 1.628; a fixed
// seed set keeps the check deterministic.
void ks_compare(const std::string& attack) {
  constexpr int kSeeds = 24;
  std::vector<double> fast_lifetimes, slow_lifetimes;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    ExperimentConfig config = base_config();
    config.attack = attack;
    config.wear_leveler = "none";
    config.spare_scheme = "maxwe";
    config.seed = static_cast<std::uint64_t>(seed);
    config.fastpath = true;
    fast_lifetimes.push_back(
        static_cast<double>(run_experiment(config).user_writes));
    config.fastpath = false;
    slow_lifetimes.push_back(
        static_cast<double>(run_experiment(config).user_writes));
  }
  std::sort(fast_lifetimes.begin(), fast_lifetimes.end());
  std::sort(slow_lifetimes.begin(), slow_lifetimes.end());
  double d_max = 0.0;
  std::size_t i = 0, j = 0;
  while (i < fast_lifetimes.size() && j < slow_lifetimes.size()) {
    if (fast_lifetimes[i] <= slow_lifetimes[j]) {
      ++i;
    } else {
      ++j;
    }
    const double f1 = static_cast<double>(i) / kSeeds;
    const double f2 = static_cast<double>(j) / kSeeds;
    d_max = std::max(d_max, std::abs(f1 - f2));
  }
  const double d_crit = 1.628 * std::sqrt(2.0 / kSeeds);
  EXPECT_LT(d_max, d_crit) << attack << ": batched and per-write lifetime "
                           << "distributions diverge";
}

TEST(FastPathEquivalenceTest, ZipfLifetimeDistributionMatchesKS) {
  ks_compare("zipf");
}
TEST(FastPathEquivalenceTest, RandomLifetimeDistributionMatchesKS) {
  ks_compare("random");
}

TEST(FastPathEquivalenceTest, StochasticSameModeResumeIsBitIdentical) {
  // The sampling substream is checkpointed and chunks never straddle a
  // checkpoint boundary, so a SIGKILLed batched zipf run resumed in the
  // same mode replays the uninterrupted run byte for byte.
  const std::string ref_events = temp_path("fastpath_eq_zipf_ref.jsonl");
  const std::string ref_ckpt = temp_path("fastpath_eq_zipf_ref.ckpt");

  ExperimentConfig base = base_config();
  base.attack = "zipf";
  base.wear_leveler = "none";
  base.spare_scheme = "maxwe";
  base.checkpoint_interval = 2'000;
  base.fastpath = true;

  std::filesystem::remove(ref_events);
  std::filesystem::remove(ref_ckpt);
  {
    ExperimentConfig config = base;
    config.checkpoint_out = ref_ckpt;
    ObsConfig obs_config;
    obs_config.events_path = ref_events;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }
  const std::string reference = slurp(ref_events);
  ASSERT_FALSE(reference.empty());

  const std::string events = temp_path("fastpath_eq_zipf_res.jsonl");
  const std::string ckpt = temp_path("fastpath_eq_zipf_res.ckpt");
  std::filesystem::remove(events);
  std::filesystem::remove(ckpt);
  {
    ExperimentConfig config = base;
    config.checkpoint_out = ckpt;
    config.max_user_writes = 7'000;  // interrupt mid-run
    ObsConfig obs_config;
    obs_config.events_path = events;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }
  {
    ExperimentConfig config = base;
    config.checkpoint_out = ckpt;
    config.resume_from = ckpt;
    ObsConfig obs_config;
    obs_config.events_path = events;
    obs_config.resume = true;
    ObsSession session(obs_config);
    config.observer = session.observer();
    run_experiment(config);
    session.finalize();
  }
  EXPECT_EQ(slurp(events), reference);

  std::filesystem::remove(events);
  std::filesystem::remove(ckpt);
  std::filesystem::remove(ref_events);
  std::filesystem::remove(ref_ckpt);
}

TEST(FastPathEquivalenceTest, StochasticCrossModeResumeCompletes) {
  // Across modes the zipf suffix is only distribution-equivalent, so no
  // byte-identity — but the resume must be accepted (fastpath is outside
  // the fingerprint), must finish the run, and must itself be
  // deterministic: resuming the same checkpoint twice gives equal results.
  const std::string ckpt = temp_path("fastpath_eq_zipf_cross.ckpt");

  ExperimentConfig base = base_config();
  base.attack = "zipf";
  base.wear_leveler = "none";
  base.spare_scheme = "maxwe";

  for (const bool first_fast : {true, false}) {
    std::filesystem::remove(ckpt);
    {
      ExperimentConfig config = base;
      config.fastpath = first_fast;
      config.checkpoint_out = ckpt;
      config.checkpoint_interval = 2'000;
      config.max_user_writes = 7'000;
      run_experiment(config);
    }
    ExperimentConfig config = base;
    config.fastpath = !first_fast;
    config.resume_from = ckpt;
    const LifetimeResult first = run_experiment(config);
    const LifetimeResult second = run_experiment(config);
    const std::string label = first_fast ? "fast->perwrite" : "perwrite->fast";
    EXPECT_TRUE(first.failed) << label;
    EXPECT_GT(first.user_writes, 7'000u) << label;
    EXPECT_EQ(first.user_writes, second.user_writes) << label;
    EXPECT_EQ(first.line_deaths, second.line_deaths) << label;
    std::filesystem::remove(ckpt);
  }
}

}  // namespace
}  // namespace nvmsec
