#include "sim/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/parallel.h"

namespace nvmsec {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> sample_payload() {
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 300; ++i) payload.push_back(static_cast<std::uint8_t>(i * 7));
  return payload;
}

std::string write_raw(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(CheckpointFileTest, RoundTripsPayload) {
  const std::string path = ::testing::TempDir() + "/ckpt_roundtrip.bin";
  const std::vector<std::uint8_t> payload = sample_payload();
  ASSERT_TRUE(save_checkpoint_file(path, payload).ok());
  EXPECT_EQ(load_checkpoint_file(path).take(), payload);
}

TEST(CheckpointFileTest, RoundTripsEmptyPayload) {
  const std::string path = ::testing::TempDir() + "/ckpt_empty.bin";
  ASSERT_TRUE(save_checkpoint_file(path, {}).ok());
  EXPECT_TRUE(load_checkpoint_file(path).take().empty());
}

TEST(CheckpointFileTest, MissingFileIsNotFound) {
  const Result<std::vector<std::uint8_t>> r =
      load_checkpoint_file(::testing::TempDir() + "/ckpt_missing.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointFileTest, BadMagicIsCorruption) {
  const std::string path = write_raw("ckpt_magic.bin", "NOTACKPTxxxxxxxxxxxx");
  const Result<std::vector<std::uint8_t>> r = load_checkpoint_file(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("bad magic"), std::string::npos);
}

TEST(CheckpointFileTest, WrongVersionIsVersionMismatch) {
  std::string bytes(kCheckpointMagic, sizeof(kCheckpointMagic));
  // One past the current version, little-endian.
  const std::uint32_t wrong = kCheckpointVersion + 1;
  bytes += std::string{static_cast<char>(wrong & 0xff),
                       static_cast<char>((wrong >> 8) & 0xff),
                       static_cast<char>((wrong >> 16) & 0xff),
                       static_cast<char>((wrong >> 24) & 0xff)};
  bytes += std::string(8, '\x00');  // zero payload size
  bytes += std::string(4, '\x00');  // (wrong) CRC
  const std::string path = write_raw("ckpt_version.bin", bytes);
  const Result<std::vector<std::uint8_t>> r = load_checkpoint_file(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kVersionMismatch);
  EXPECT_NE(r.status().message().find("version " + std::to_string(wrong)),
            std::string::npos);
}

TEST(CheckpointFileTest, TruncatedPayloadIsRejected) {
  const std::string path = ::testing::TempDir() + "/ckpt_trunc.bin";
  ASSERT_TRUE(save_checkpoint_file(path, sample_payload()).ok());
  std::string bytes = slurp(path);
  bytes.resize(bytes.size() - 10);
  const std::string cut = write_raw("ckpt_trunc_cut.bin", bytes);
  const Result<std::vector<std::uint8_t>> r = load_checkpoint_file(cut);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
}

TEST(CheckpointFileTest, FlippedPayloadByteIsCrcCorruption) {
  const std::string path = ::testing::TempDir() + "/ckpt_crc.bin";
  ASSERT_TRUE(save_checkpoint_file(path, sample_payload()).ok());
  std::string bytes = slurp(path);
  bytes[25] = static_cast<char>(bytes[25] ^ 0x40);  // inside the payload
  const std::string bad = write_raw("ckpt_crc_bad.bin", bytes);
  const Result<std::vector<std::uint8_t>> r = load_checkpoint_file(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("CRC"), std::string::npos);
}

ExperimentConfig maxwe_config() {
  ExperimentConfig c = scaled_stochastic_config(512, 32, 300.0);
  c.spare_scheme = "maxwe";
  return c;
}

TEST(ConfigFingerprintTest, IgnoresRunCapButTracksTrajectoryFields) {
  ExperimentConfig a = maxwe_config();
  ExperimentConfig b = a;
  // A capped checkpointing run stands in for the uncapped run it resumes
  // into, so the cap must not enter the fingerprint.
  b.max_user_writes = 12345;
  EXPECT_EQ(config_fingerprint(a), config_fingerprint(b));
  b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
  b = a;
  b.attack = "bpa";
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
  b = a;
  b.fault.device.stuck_at_lines = 1;
  EXPECT_NE(config_fingerprint(a), config_fingerprint(b));
}

TEST(CheckpointResumeTest, ResumedRunIsBitIdenticalToUninterrupted) {
  const std::string path = ::testing::TempDir() + "/ckpt_resume.bin";
  fs::remove(path);
  const ExperimentConfig clean = maxwe_config();
  const LifetimeResult reference = run_experiment(clean);
  ASSERT_TRUE(reference.failed);

  // Phase 1: run the same config capped, dropping checkpoints on the way.
  ExperimentConfig capped = clean;
  capped.checkpoint_out = path;
  capped.checkpoint_interval = 2000;
  capped.max_user_writes = 5000;
  const LifetimeResult partial = run_experiment(capped);
  ASSERT_FALSE(partial.failed);
  ASSERT_TRUE(fs::exists(path));

  // Phase 2: resume uncapped from the last checkpoint; the trajectory must
  // rejoin the uninterrupted run exactly.
  ExperimentConfig resumed = clean;
  resumed.resume_from = path;
  const LifetimeResult result = run_experiment(resumed);
  EXPECT_DOUBLE_EQ(result.user_writes, reference.user_writes);
  EXPECT_EQ(result.overhead_writes, reference.overhead_writes);
  EXPECT_EQ(result.absorbed_writes, reference.absorbed_writes);
  EXPECT_EQ(result.device_writes, reference.device_writes);
  EXPECT_EQ(result.line_deaths, reference.line_deaths);
  EXPECT_DOUBLE_EQ(result.normalized, reference.normalized);
  EXPECT_EQ(result.failure_reason, reference.failure_reason);
}

TEST(CheckpointResumeTest, ResumeWithFaultsIsStillBitIdentical) {
  const std::string path = ::testing::TempDir() + "/ckpt_resume_fault.bin";
  fs::remove(path);
  ExperimentConfig clean = maxwe_config();
  clean.fault.metadata.flip_interval = 700;
  const LifetimeResult reference = run_experiment(clean);

  ExperimentConfig capped = clean;
  capped.checkpoint_out = path;
  capped.checkpoint_interval = 1500;
  capped.max_user_writes = 4000;
  run_experiment(capped);
  ASSERT_TRUE(fs::exists(path));

  ExperimentConfig resumed = clean;
  resumed.resume_from = path;
  const LifetimeResult result = run_experiment(resumed);
  EXPECT_DOUBLE_EQ(result.user_writes, reference.user_writes);
  EXPECT_EQ(result.line_deaths, reference.line_deaths);
  EXPECT_DOUBLE_EQ(result.normalized, reference.normalized);
}

TEST(CheckpointResumeTest, RefusesCheckpointFromDifferentConfig) {
  const std::string path = ::testing::TempDir() + "/ckpt_foreign.bin";
  fs::remove(path);
  ExperimentConfig writer = maxwe_config();
  writer.checkpoint_out = path;
  writer.checkpoint_interval = 1000;
  writer.max_user_writes = 2500;
  run_experiment(writer);
  ASSERT_TRUE(fs::exists(path));

  ExperimentConfig other = maxwe_config();
  other.seed = writer.seed + 17;
  other.resume_from = path;
  try {
    run_experiment(other);
    FAIL() << "expected a refusal to resume";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different configuration"),
              std::string::npos);
  }
}

TEST(CheckpointResumeTest, ChecksummedStateSurvivesConfigValidation) {
  ExperimentConfig c = maxwe_config();
  c.checkpoint_out = ::testing::TempDir() + "/ckpt_invalid.bin";
  c.checkpoint_interval = 0;  // interval missing
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
  c.checkpoint_out.clear();
  c.checkpoint_interval = 100;  // path missing
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
  c = maxwe_config();
  c.mode = SimulationMode::kUniformEvent;
  c.checkpoint_out = ::testing::TempDir() + "/ckpt_event.bin";
  c.checkpoint_interval = 100;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(SweepCheckpointTest, ResumeSkipsRecordedRunsAndMatchesResults) {
  const std::string path = ::testing::TempDir() + "/sweep_ckpt.bin";
  fs::remove(path);
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ExperimentConfig c = maxwe_config();
    c.seed = seed;
    configs.push_back(c);
  }
  ParallelOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  const std::vector<LifetimeResult> first = run_experiments(configs, options);
  ASSERT_TRUE(fs::exists(path));

  // A resumed sweep replays the recorded results without re-running.
  options.resume = true;
  const std::vector<LifetimeResult> second = run_experiments(configs, options);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(second[i].user_writes, first[i].user_writes);
    EXPECT_EQ(second[i].line_deaths, first[i].line_deaths);
    EXPECT_DOUBLE_EQ(second[i].normalized, first[i].normalized);
    EXPECT_EQ(second[i].failure_reason, first[i].failure_reason);
  }

  // A config change at one index invalidates only that record.
  configs[1].seed = 99;
  const std::vector<LifetimeResult> third = run_experiments(configs, options);
  EXPECT_DOUBLE_EQ(third[0].user_writes, first[0].user_writes);
  EXPECT_NE(third[1].user_writes, first[1].user_writes);
  EXPECT_DOUBLE_EQ(third[2].user_writes, first[2].user_writes);
}

TEST(SweepCheckpointTest, ResumeWithoutPathIsRejected) {
  ParallelOptions options;
  options.resume = true;
  const std::vector<ExperimentConfig> configs(1, maxwe_config());
  EXPECT_THROW(run_experiments(configs, options), std::invalid_argument);
}

TEST(SweepCheckpointTest, MissingCheckpointFileIsAFreshStart) {
  const std::string path = ::testing::TempDir() + "/sweep_fresh.bin";
  fs::remove(path);
  ParallelOptions options;
  options.jobs = 1;
  options.checkpoint_path = path;
  options.resume = true;  // nothing to resume from: run everything
  const std::vector<ExperimentConfig> configs(1, maxwe_config());
  const std::vector<LifetimeResult> results =
      run_experiments(configs, options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].failed);
  EXPECT_TRUE(fs::exists(path));
}

}  // namespace
}  // namespace nvmsec
