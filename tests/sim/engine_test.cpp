#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "attack/attack.h"
#include "core/maxwe.h"
#include "spare/spare_scheme.h"
#include "wearlevel/none.h"

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> uniform_map(std::uint64_t lines,
                                                std::uint64_t regions,
                                                Endurance e) {
  return std::make_shared<EnduranceMap>(
      DeviceGeometry::scaled(lines, regions),
      std::vector<Endurance>(regions, e));
}

TEST(EngineTest, MismatchedWorkingSizesRejected) {
  auto map = uniform_map(64, 8, 10);
  Device device(map);
  auto attack = make_uaa();
  NoWearLeveling wl(32);  // wrong size on purpose
  auto spare = make_no_spare(map);
  Rng rng(1);
  EXPECT_THROW(Engine(device, *attack, wl, *spare, rng),
               std::invalid_argument);
}

TEST(EngineTest, UnprotectedUniformDeviceDiesAtExactEndurance) {
  // Every line has endurance 10; UAA writes each line once per round, so
  // the first wear-out happens on user write 10*64 (the last write of round
  // 10) — and with no spares that is the device's lifetime.
  auto map = uniform_map(64, 8, 10);
  Device device(map);
  auto attack = make_uaa();
  NoWearLeveling wl(64);
  auto spare = make_no_spare(map);
  Rng rng(1);
  Engine engine(device, *attack, wl, *spare, rng);
  const LifetimeResult r = engine.run();
  EXPECT_TRUE(r.failed);
  // The sweep wears line 0 out first, at its 10th write = user write 9*64+1.
  EXPECT_DOUBLE_EQ(r.user_writes, 9 * 64 + 1);
  EXPECT_EQ(r.line_deaths, 1u);
  EXPECT_DOUBLE_EQ(r.ideal_lifetime, 640.0);
}

TEST(EngineTest, WriteCapStopsWithoutFailure) {
  auto map = uniform_map(64, 8, 1000);
  Device device(map);
  auto attack = make_uaa();
  NoWearLeveling wl(64);
  auto spare = make_no_spare(map);
  Rng rng(1);
  Engine engine(device, *attack, wl, *spare, rng);
  const LifetimeResult r = engine.run(/*max_user_writes=*/500);
  EXPECT_FALSE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 500);
  EXPECT_EQ(r.failure_reason, "write cap reached");
  EXPECT_EQ(r.device_writes, 500u);
}

TEST(EngineTest, NormalizedLifetimeIsUserWritesOverIdeal) {
  auto map = uniform_map(64, 8, 10);
  Device device(map);
  auto attack = make_uaa();
  NoWearLeveling wl(64);
  auto spare = make_no_spare(map);
  Rng rng(1);
  Engine engine(device, *attack, wl, *spare, rng);
  const LifetimeResult r = engine.run();
  EXPECT_DOUBLE_EQ(r.normalized, r.user_writes / r.ideal_lifetime);
}

TEST(EngineTest, SpareSchemeExtendsLifetime) {
  // Endurance varies across regions, so sparing out the early deaths buys
  // real lifetime (with uniform endurance all lines die together and spares
  // cannot help).
  std::vector<Endurance> es{10, 20, 30, 40, 50, 60, 70, 80};
  auto map = std::make_shared<EnduranceMap>(DeviceGeometry::scaled(64, 8), es);
  auto run_with = [&](std::unique_ptr<SpareScheme> spare) {
    Device device(map);
    auto attack = make_uaa();
    NoWearLeveling wl(static_cast<std::uint64_t>(spare->working_lines()));
    Rng rng(1);
    Engine engine(device, *attack, wl, *spare, rng);
    return engine.run();
  };
  Rng pool_rng(2);
  const auto unprotected = run_with(make_no_spare(map));
  const auto with_ps = run_with(make_ps(map, 8, pool_rng));
  EXPECT_TRUE(with_ps.failed);
  EXPECT_GT(with_ps.normalized, unprotected.normalized);
}

TEST(EngineTest, HotspotOnUnprotectedDeviceDiesFast) {
  auto map = uniform_map(64, 8, 50);
  Device device(map);
  auto attack = make_hotspot(1);
  NoWearLeveling wl(64);
  auto spare = make_no_spare(map);
  Rng rng(1);
  Engine engine(device, *attack, wl, *spare, rng);
  const LifetimeResult r = engine.run();
  EXPECT_TRUE(r.failed);
  EXPECT_DOUBLE_EQ(r.user_writes, 50);  // exactly one line's endurance
}

TEST(EngineTest, OverheadWritesWearTheDevice) {
  // With wear leveling, migration writes consume endurance: the device
  // absorbs more physical writes than the attacker issues.
  auto map = uniform_map(64, 8, 100);
  Device device(map);
  auto attack = make_uaa();
  EnduranceView view(64, 100.0);
  WearLevelerParams params;
  params.swap_interval = 5;
  Rng rng(3);
  auto wl = make_wear_leveler("pcms", 64, view, params, rng);
  auto spare = make_no_spare(map);
  Engine engine(device, *attack, *wl, *spare, rng);
  const LifetimeResult r = engine.run();
  EXPECT_GT(r.overhead_writes, 0u);
  EXPECT_EQ(r.device_writes,
            static_cast<WriteCount>(r.user_writes) + r.overhead_writes);
}

TEST(EngineTest, FrontBufferRequiresWriteCap) {
  auto map = uniform_map(64, 8, 10);
  Device device(map);
  auto attack = make_hotspot(1);
  NoWearLeveling wl(64);
  auto spare = make_no_spare(map);
  Rng rng(1);
  Engine engine(device, *attack, wl, *spare, rng);
  DramBuffer buffer(4);
  engine.set_front_buffer(&buffer);
  EXPECT_THROW(engine.run(0), std::invalid_argument);
}

TEST(EngineTest, FrontBufferAbsorbsHotspotEntirely) {
  auto map = uniform_map(64, 8, 10);
  Device device(map);
  auto attack = make_hotspot(2);  // working set of 2 fits a 4-line buffer
  NoWearLeveling wl(64);
  auto spare = make_no_spare(map);
  Rng rng(1);
  Engine engine(device, *attack, wl, *spare, rng);
  DramBuffer buffer(4);
  engine.set_front_buffer(&buffer);
  const LifetimeResult r = engine.run(10000);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.absorbed_writes, 10000u);  // nothing ever reached the NVM
  EXPECT_EQ(r.device_writes, 0u);
}

TEST(EngineTest, FrontBufferUselessAgainstUaa) {
  // §3.3.2: uniform sweeps never hit the buffer, so the device wears as if
  // the buffer were absent (modulo the tiny resident set).
  auto map = uniform_map(64, 8, 1000);
  Device device(map);
  auto attack = make_uaa();
  NoWearLeveling wl(64);
  auto spare = make_no_spare(map);
  Rng rng(1);
  Engine engine(device, *attack, wl, *spare, rng);
  DramBuffer buffer(8);
  engine.set_front_buffer(&buffer);
  const LifetimeResult r = engine.run(5000);
  EXPECT_EQ(r.absorbed_writes, 8u);  // only the cold fill
  EXPECT_EQ(r.device_writes, 5000u - 8u);
}

TEST(EngineTest, MaxWeSurvivesLongerThanNoSpareUnderUaa) {
  std::vector<Endurance> es;
  for (int r = 0; r < 16; ++r) es.push_back(20.0 * (r + 1));
  auto map = std::make_shared<EnduranceMap>(DeviceGeometry::scaled(128, 16),
                                            es);
  auto run_with = [&](std::unique_ptr<SpareScheme> spare) {
    Device device(map);
    auto attack = make_uaa();
    NoWearLeveling wl(spare->working_lines());
    Rng rng(4);
    Engine engine(device, *attack, wl, *spare, rng);
    return engine.run();
  };
  MaxWeParams params;
  params.spare_fraction = 0.25;
  params.swr_fraction = 0.75;
  const auto unprotected = run_with(make_no_spare(map));
  const auto protected_run = run_with(make_maxwe(map, params));
  EXPECT_GT(protected_run.normalized, 2 * unprotected.normalized);
}

}  // namespace
}  // namespace nvmsec
