#include "sim/endurance_cache.h"

#include <gtest/gtest.h>

#include "nvm/endurance_map.h"
#include "sim/experiment.h"

namespace nvmsec {
namespace {

DeviceGeometry small_geometry() { return DeviceGeometry::scaled(1024, 64); }

TEST(EnduranceMapCacheTest, ZeroCapacityRejected) {
  EXPECT_THROW(EnduranceMapCache(0), std::invalid_argument);
}

TEST(EnduranceMapCacheTest, RepeatedKeyHitsAndSharesOneMap) {
  EnduranceMapCache cache(4);
  EnduranceModelParams params;
  const auto first = cache.get_or_build(small_geometry(), params, 42, 0.0);
  const auto second = cache.get_or_build(small_geometry(), params, 42, 0.0);
  EXPECT_EQ(first.map.get(), second.map.get());  // literally shared
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EnduranceMapCacheTest, AnyKeyComponentChangeIsAMiss) {
  EnduranceMapCache cache(16);
  EnduranceModelParams params;
  cache.get_or_build(small_geometry(), params, 42, 0.0);

  cache.get_or_build(small_geometry(), params, 43, 0.0);  // seed
  cache.get_or_build(small_geometry(), params, 42, 0.1);  // jitter
  cache.get_or_build(DeviceGeometry::scaled(2048, 64), params, 42,
                     0.0);  // geometry
  EnduranceModelParams other = params;
  other.endurance_exponent = 6.0;
  cache.get_or_build(small_geometry(), other, 42, 0.0);  // model params

  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 5u);
}

TEST(EnduranceMapCacheTest, CachedMapEqualsColdBuild) {
  EnduranceMapCache cache(4);
  EnduranceModelParams params;
  const auto built = cache.get_or_build(small_geometry(), params, 7, 0.25);

  Rng rng(7);
  EnduranceMap expected =
      EnduranceMap::from_model(small_geometry(), EnduranceModel(params), rng);
  expected.apply_line_jitter(0.25, rng);

  ASSERT_EQ(built.map->geometry().num_lines(), expected.geometry().num_lines());
  for (std::uint64_t line = 0; line < expected.geometry().num_lines();
       ++line) {
    ASSERT_DOUBLE_EQ(built.map->line_endurance(PhysLineAddr{line}),
                     expected.line_endurance(PhysLineAddr{line}))
        << "line " << line;
  }
  // The memoized RNG stream continues exactly where the cold build's did.
  Rng replay = built.rng_after_build;
  EXPECT_EQ(replay.generator().next(), rng.generator().next());
  EXPECT_EQ(replay.generator().next(), rng.generator().next());
}

TEST(EnduranceMapCacheTest, RunExperimentWithCacheIsBitIdentical) {
  EnduranceMapCache cache(4);
  // pcd consumes rng draws after map construction and the stochastic engine
  // keeps drawing throughout the run, so any rng desynchronization from the
  // cache would show up here.
  ExperimentConfig c = scaled_stochastic_config(1024, 64, 2000.0);
  c.attack = "bpa";
  c.wear_leveler = "wawl";
  c.spare_scheme = "pcd";
  c.line_jitter_sigma = 0.2;
  c.seed = 13;

  const LifetimeResult cold = run_experiment(c);
  const LifetimeResult miss = run_experiment(c, &cache);
  const LifetimeResult hit = run_experiment(c, &cache);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  for (const LifetimeResult* r : {&miss, &hit}) {
    EXPECT_DOUBLE_EQ(r->user_writes, cold.user_writes);
    EXPECT_DOUBLE_EQ(r->normalized, cold.normalized);
    EXPECT_EQ(r->overhead_writes, cold.overhead_writes);
    EXPECT_EQ(r->device_writes, cold.device_writes);
    EXPECT_EQ(r->line_deaths, cold.line_deaths);
    EXPECT_EQ(r->failure_reason, cold.failure_reason);
  }
}

TEST(EnduranceMapCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  EnduranceMapCache cache(2);
  EnduranceModelParams params;
  const DeviceGeometry g = small_geometry();

  cache.get_or_build(g, params, 1, 0.0);  // {1}
  cache.get_or_build(g, params, 2, 0.0);  // {2, 1}
  cache.get_or_build(g, params, 1, 0.0);  // hit -> {1, 2}
  EXPECT_EQ(cache.hits(), 1u);

  cache.get_or_build(g, params, 3, 0.0);  // evicts 2 -> {3, 1}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);

  cache.get_or_build(g, params, 1, 0.0);  // still resident
  EXPECT_EQ(cache.hits(), 2u);
  cache.get_or_build(g, params, 2, 0.0);  // was evicted -> miss again
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(EnduranceMapCacheTest, ClearEmptiesButKeepsStats) {
  EnduranceMapCache cache(4);
  EnduranceModelParams params;
  cache.get_or_build(small_geometry(), params, 1, 0.0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  cache.get_or_build(small_geometry(), params, 1, 0.0);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(EnduranceMapCacheTest, GlobalCacheIsASingleton) {
  EXPECT_EQ(&EnduranceMapCache::global(), &EnduranceMapCache::global());
  EXPECT_GE(EnduranceMapCache::global().max_entries(), 1u);
}

}  // namespace
}  // namespace nvmsec
