#include "attack/zipf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "sim/experiment.h"

namespace nvmsec {
namespace {

TEST(ZipfTest, ConstructionValidation) {
  EXPECT_THROW(ZipfWorkload(0.99, 0), std::invalid_argument);
  EXPECT_THROW(ZipfWorkload(-0.5, 100), std::invalid_argument);
  EXPECT_NO_THROW(ZipfWorkload(0.0, 100));
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfWorkload w(0.0, 16);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) ++counts[w.next(rng, 16).value()];
  for (const auto& [addr, count] : counts) {
    EXPECT_NEAR(count, kDraws / 16.0, 5 * std::sqrt(kDraws / 16.0))
        << "address " << addr;
  }
}

TEST(ZipfTest, SkewConcentratesTraffic) {
  ZipfWorkload w(0.99, 1024);
  Rng rng(2);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[w.next(rng, 1024).value()];
  std::vector<int> sorted;
  for (const auto& [addr, count] : counts) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  // Top 16 addresses carry a large share; with s=0.99 over 1024 ranks the
  // top-16 mass is about 40%.
  int top16 = 0;
  for (int i = 0; i < 16 && i < static_cast<int>(sorted.size()); ++i) {
    top16 += sorted[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(top16, kDraws / 4);
}

TEST(ZipfTest, HotAddressesAreScatteredNotSequential) {
  // The rank->address placement is a random permutation, so the hottest
  // addresses should not all be tiny addresses.
  ZipfWorkload w(1.2, 4096);
  Rng rng(3);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[w.next(rng, 4096).value()];
  std::uint64_t hottest = 0;
  int best = -1;
  for (const auto& [addr, count] : counts) {
    if (count > best) {
      best = count;
      hottest = addr;
    }
  }
  // With uniform placement the chance the hottest rank lands below 16 is
  // 16/4096; assert it landed somewhere non-trivial for this fixed seed.
  EXPECT_GT(hottest, 16u);
}

TEST(ZipfTest, RespectsShrinkingSpace) {
  ZipfWorkload w(0.99, 1024);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(w.next(rng, 10).value(), 10u);
  }
}

TEST(ZipfTest, BenignWorkloadBenefitsFromWearLeveling) {
  // The contrast UAA destroys: for a skewed benign workload, a randomizing
  // wear leveler extends lifetime substantially.
  auto lifetime = [](const std::string& wl) {
    ExperimentConfig c = scaled_stochastic_config(1024, 64, 5000);
    c.attack = "zipf";
    c.zipf_skew = 1.1;
    c.wear_leveler = wl;
    c.spare_scheme = "none";
    c.seed = 5;
    return run_experiment(c).normalized;
  };
  const double unleveled = lifetime("none");
  const double leveled = lifetime("tlsr");
  EXPECT_GT(leveled, 3 * unleveled);
}

}  // namespace
}  // namespace nvmsec
