#include "attack/zipf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "sim/experiment.h"

namespace nvmsec {
namespace {

TEST(ZipfTest, ConstructionValidation) {
  EXPECT_THROW(ZipfWorkload(0.99, 0), std::invalid_argument);
  EXPECT_THROW(ZipfWorkload(-0.5, 100), std::invalid_argument);
  EXPECT_NO_THROW(ZipfWorkload(0.0, 100));
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfWorkload w(0.0, 16);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) ++counts[w.next(rng, 16).value()];
  for (const auto& [addr, count] : counts) {
    EXPECT_NEAR(count, kDraws / 16.0, 5 * std::sqrt(kDraws / 16.0))
        << "address " << addr;
  }
}

TEST(ZipfTest, SkewConcentratesTraffic) {
  ZipfWorkload w(0.99, 1024);
  Rng rng(2);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[w.next(rng, 1024).value()];
  std::vector<int> sorted;
  for (const auto& [addr, count] : counts) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  // Top 16 addresses carry a large share; with s=0.99 over 1024 ranks the
  // top-16 mass is about 40%.
  int top16 = 0;
  for (int i = 0; i < 16 && i < static_cast<int>(sorted.size()); ++i) {
    top16 += sorted[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(top16, kDraws / 4);
}

TEST(ZipfTest, HotAddressesAreScatteredNotSequential) {
  // The rank->address placement is a random permutation, so the hottest
  // addresses should not all be tiny addresses.
  ZipfWorkload w(1.2, 4096);
  Rng rng(3);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[w.next(rng, 4096).value()];
  std::uint64_t hottest = 0;
  int best = -1;
  for (const auto& [addr, count] : counts) {
    if (count > best) {
      best = count;
      hottest = addr;
    }
  }
  // With uniform placement the chance the hottest rank lands below 16 is
  // 16/4096; assert it landed somewhere non-trivial for this fixed seed.
  EXPECT_GT(hottest, 16u);
}

TEST(ZipfTest, RespectsShrinkingSpace) {
  ZipfWorkload w(0.99, 1024);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(w.next(rng, 10).value(), 10u);
  }
}

TEST(ZipfTest, BenignWorkloadBenefitsFromWearLeveling) {
  // The contrast UAA destroys: for a skewed benign workload, a randomizing
  // wear leveler extends lifetime substantially.
  auto lifetime = [](const std::string& wl) {
    ExperimentConfig c = scaled_stochastic_config(1024, 64, 5000);
    c.attack = "zipf";
    c.zipf_skew = 1.1;
    c.wear_leveler = wl;
    c.spare_scheme = "none";
    c.seed = 5;
    return run_experiment(c).normalized;
  };
  const double unleveled = lifetime("none");
  const double leveled = lifetime("tlsr");
  EXPECT_GT(leveled, 3 * unleveled);
}


TEST(ZipfTest, NextCountsMatchesPerDrawDistribution) {
  const std::uint64_t kLines = 128;
  const std::uint64_t kDraws = 200'000;
  ZipfWorkload batched(0.99, kLines);
  ZipfWorkload per_write(0.99, kLines);

  Rng counts_rng(17);
  WriteCountVector out;
  ASSERT_TRUE(batched.next_counts(counts_rng, kLines, kDraws, out));
  EXPECT_EQ(out.total(), kDraws);
  std::vector<double> from_counts(kLines, 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_LT(out.addrs[i], kLines);
    from_counts[out.addrs[i]] += static_cast<double>(out.counts[i]);
  }

  Rng rng(71);
  std::vector<double> from_draws(kLines, 0.0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    from_draws[per_write.next(rng, kLines).value()] += 1.0;
  }

  // Same address space, same skew: the two histograms agree cell-by-cell
  // within sampling noise (6 sigma of the larger expected count, floored
  // so the cold tail's tiny cells don't produce vacuous bands).
  for (std::uint64_t a = 0; a < kLines; ++a) {
    const double expected = std::max(from_draws[a], 1.0);
    EXPECT_NEAR(from_counts[a], from_draws[a],
                6.0 * std::sqrt(expected) + 6.0)
        << "addr=" << a;
  }
}

TEST(ZipfTest, NextCountsFoldsPlacementThroughSamePermutation) {
  // The hottest address under next() must also be the hottest under
  // next_counts(): both go through the same rank->address placement.
  const std::uint64_t kLines = 64;
  ZipfWorkload w(1.2, kLines);
  Rng rng(3);
  std::map<std::uint64_t, std::uint64_t> per_draw;
  for (int i = 0; i < 50'000; ++i) ++per_draw[w.next(rng, kLines).value()];
  std::uint64_t hottest_draw = 0, best = 0;
  for (const auto& [addr, n] : per_draw) {
    if (n > best) { best = n; hottest_draw = addr; }
  }
  WriteCountVector out;
  Rng counts_rng(4);
  ASSERT_TRUE(w.next_counts(counts_rng, kLines, 50'000, out));
  std::uint64_t hottest_counts = 0;
  WriteCount best_count = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.counts[i] > best_count) {
      best_count = out.counts[i];
      hottest_counts = out.addrs[i];
    }
  }
  EXPECT_EQ(hottest_counts, hottest_draw);
}

TEST(ZipfTest, DistCacheSharesInstancesAcrossWorkloads) {
  const std::uint64_t h0 = zipf_dist_cache_hits();
  const auto a = zipf_dist(0.77, 4321);
  const std::uint64_t m_after_first = zipf_dist_cache_misses();
  const auto b = zipf_dist(0.77, 4321);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GE(zipf_dist_cache_hits(), h0 + 1);
  // A distinct key misses; the first lookup's miss count is unchanged.
  const auto c = zipf_dist(0.78, 4321);
  EXPECT_NE(a.get(), c.get());
  EXPECT_GT(zipf_dist_cache_misses(), m_after_first);

  // Two workloads with equal (skew, lines) share one dist instance, and
  // different placement seeds still produce different address streams.
  ZipfWorkload w1(0.77, 4321, /*placement_seed=*/1);
  ZipfWorkload w2(0.77, 4321, /*placement_seed=*/2);
  Rng r1(5), r2(5);
  bool diverged = false;
  for (int i = 0; i < 50; ++i) {
    diverged |= w1.next(r1, 4321).value() != w2.next(r2, 4321).value();
  }
  EXPECT_TRUE(diverged);
}

TEST(ZipfTest, AddressRatesMatchEmpiricalFrequencies) {
  const std::uint64_t kLines = 64;
  const std::vector<double> rates = zipf_address_rates(0.99, kLines);
  ASSERT_EQ(rates.size(), kLines);
  double total = 0.0;
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    total += r;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  // Empirical frequencies from the workload itself (same default placement
  // seed) converge on the analytic rates.
  ZipfWorkload w(0.99, kLines);
  Rng rng(21);
  const std::uint64_t kDraws = 400'000;
  std::vector<double> freq(kLines, 0.0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    freq[w.next(rng, kLines).value()] += 1.0;
  }
  for (std::uint64_t a = 0; a < kLines; ++a) {
    const double expected = rates[a] * static_cast<double>(kDraws);
    EXPECT_NEAR(freq[a], expected, 6.0 * std::sqrt(expected + 1.0) + 6.0)
        << "addr=" << a;
  }
}

}  // namespace
}  // namespace nvmsec
