// Tests for the composite phase-schedule attack: spec parsing, exact phase
// boundaries, cyclic wrap with generator state carried across bursts, the
// weakest-contract rule, boundary-capped batched draws, and checkpoint
// state round trips.
#include "attack/mixed.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "util/rng.h"
#include "util/serialize.h"

namespace nvmsec {
namespace {

constexpr std::uint64_t kLines = 100;

MixedAttack::Phase phase(std::unique_ptr<Attack> a, std::uint64_t writes) {
  MixedAttack::Phase p;
  p.attack = std::move(a);
  p.writes = writes;
  return p;
}

/// uaa:N then hotspot(1) forever — the canonical benign-then-onset shape,
/// inverted (the deterministic generators make addresses checkable).
std::unique_ptr<MixedAttack> sweep_then_hammer(std::uint64_t sweep_writes) {
  std::vector<MixedAttack::Phase> phases;
  phases.push_back(phase(make_uaa(), sweep_writes));
  phases.push_back(phase(make_hotspot(1), 0));
  return std::make_unique<MixedAttack>(std::move(phases));
}

TEST(ParseMixedPhasesTest, ParsesNamesBudgetsAndSuffixes) {
  const auto phases = parse_mixed_phases("zipf:200k,bpa:3M,uaa:0");
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].attack, "zipf");
  EXPECT_EQ(phases[0].writes, 200'000u);
  EXPECT_EQ(phases[1].attack, "bpa");
  EXPECT_EQ(phases[1].writes, 3'000'000u);
  EXPECT_EQ(phases[2].attack, "uaa");
  EXPECT_EQ(phases[2].writes, 0u);
}

TEST(ParseMixedPhasesTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_mixed_phases(""), std::invalid_argument);
  EXPECT_THROW(parse_mixed_phases("uaa"), std::invalid_argument);
  EXPECT_THROW(parse_mixed_phases(":5"), std::invalid_argument);
  EXPECT_THROW(parse_mixed_phases("uaa:"), std::invalid_argument);
  EXPECT_THROW(parse_mixed_phases("uaa:12x"), std::invalid_argument);
  EXPECT_THROW(parse_mixed_phases("uaa:k"), std::invalid_argument);
  EXPECT_THROW(parse_mixed_phases("zipf:10,,uaa:0"), std::invalid_argument);
  // An unbounded phase anywhere but last can never be left.
  EXPECT_THROW(parse_mixed_phases("uaa:0,zipf:10"), std::invalid_argument);
}

TEST(MixedAttackTest, ConstructionValidation) {
  EXPECT_THROW(MixedAttack(std::vector<MixedAttack::Phase>{}),
               std::invalid_argument);
  {
    std::vector<MixedAttack::Phase> phases;
    phases.push_back(phase(nullptr, 10));
    EXPECT_THROW(MixedAttack(std::move(phases)), std::invalid_argument);
  }
  {
    std::vector<MixedAttack::Phase> phases;
    phases.push_back(phase(make_uaa(), 0));
    phases.push_back(phase(make_hotspot(1), 10));
    EXPECT_THROW(MixedAttack(std::move(phases)), std::invalid_argument);
  }
}

TEST(MixedAttackTest, SwitchesPhasesAtExactBoundary) {
  auto a = sweep_then_hammer(4);
  Rng rng(1);
  // Exactly 4 sweep writes, then the hammer takes over forever.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a->next(rng, kLines).value(), i);
  }
  EXPECT_EQ(a->current_phase(), 0u);  // advance is lazy: on the next draw
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a->next(rng, kLines).value(), 0u);
  }
  EXPECT_EQ(a->current_phase(), 1u);
}

TEST(MixedAttackTest, CyclicScheduleRetainsGeneratorState) {
  // Both phases bounded => the schedule wraps, and the sweep must RESUME
  // (not restart) on its second burst: 0,1,2, hammer, 3,4,5, hammer, ...
  std::vector<MixedAttack::Phase> phases;
  phases.push_back(phase(make_uaa(), 3));
  phases.push_back(phase(make_hotspot(1), 2));
  MixedAttack a(std::move(phases));
  Rng rng(2);
  std::uint64_t sweep_cursor = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(a.next(rng, kLines).value(), sweep_cursor++ % kLines);
    }
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(a.next(rng, kLines).value(), 0u);
    }
  }
}

TEST(MixedAttackTest, ContractIsWeakestOfPhases) {
  {
    std::vector<MixedAttack::Phase> phases;
    phases.push_back(phase(make_uaa(), 10));
    phases.push_back(phase(make_bpa(), 0));
    EXPECT_EQ(MixedAttack(std::move(phases)).batch_contract(),
              BatchContract::kBitIdentical);
  }
  {
    std::vector<MixedAttack::Phase> phases;
    phases.push_back(phase(make_uaa(), 10));
    phases.push_back(phase(make_hotspot(4), 0));
    EXPECT_EQ(MixedAttack(std::move(phases)).batch_contract(),
              BatchContract::kMultisetExact);
  }
  {
    std::vector<MixedAttack::Phase> phases;
    phases.push_back(phase(make_hotspot(4), 10));
    phases.push_back(phase(make_random_uniform(), 0));
    EXPECT_EQ(MixedAttack(std::move(phases)).batch_contract(),
              BatchContract::kDistributionEquivalent);
  }
}

TEST(MixedAttackTest, RunsNeverStraddlePhaseBoundary) {
  auto a = sweep_then_hammer(10);
  Rng rng(3);
  // The sweep would happily emit 64 writes, but the phase has 10 left.
  AttackRun run = a->next_run(rng, kLines, 64);
  EXPECT_EQ(run.start.value(), 0u);
  EXPECT_EQ(run.count, 10u);
  EXPECT_EQ(run.stride, 1u);
  // Next run comes from the hammer phase: stride-0 on line 0.
  run = a->next_run(rng, kLines, 64);
  EXPECT_EQ(run.start.value(), 0u);
  EXPECT_EQ(run.stride * (run.count - 1), 0u);
}

TEST(MixedAttackTest, CountsCapAtPhaseBoundaryAndSweepDeclines) {
  std::vector<MixedAttack::Phase> phases;
  phases.push_back(phase(make_hotspot(4), 10));
  phases.push_back(phase(make_uaa(), 0));
  MixedAttack a(std::move(phases));
  Rng rng(4);
  WriteCountVector out;
  // Asked for 64 but the counts-capable phase has only 10 writes left:
  // the draw is capped, not straddled.
  ASSERT_TRUE(a.next_counts(rng, kLines, 64, out));
  EXPECT_EQ(out.total(), 10u);
  // The sweep phase has no counts form; the caller must fall back to runs.
  out = WriteCountVector{};
  EXPECT_FALSE(a.next_counts(rng, kLines, 64, out));
  const AttackRun run = a.next_run(rng, kLines, 7);
  EXPECT_EQ(run.count, 7u);
  EXPECT_EQ(run.stride, 1u);
}

TEST(MixedAttackTest, StateRoundTripsMidPhase) {
  // Stop mid-sweep in the second cycle, restore into a freshly built
  // schedule, and require the two streams to agree write for write.
  auto build = [] {
    std::vector<MixedAttack::Phase> phases;
    phases.push_back(phase(make_uaa(), 7));
    phases.push_back(phase(make_hotspot(2), 5));
    return std::make_unique<MixedAttack>(std::move(phases));
  };
  auto original = build();
  Rng rng(5);
  for (int i = 0; i < 17; ++i) original->next(rng, kLines);

  StateWriter w;
  original->save_state(w);
  auto restored = build();
  StateReader r(w.buffer());
  ASSERT_TRUE(restored->load_state(r).ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored->current_phase(), original->current_phase());

  Rng rng_a(6), rng_b(6);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(original->next(rng_a, kLines), restored->next(rng_b, kLines))
        << "write " << i;
  }
}

TEST(MixedAttackTest, LoadRejectsCorruptPositions) {
  auto a = sweep_then_hammer(10);
  {
    StateWriter w;
    w.u64(5);  // phase index out of range
    w.u64(0);
    StateReader r(w.buffer());
    EXPECT_FALSE(a->load_state(r).ok());
  }
  {
    StateWriter w;
    w.u64(0);
    w.u64(11);  // position past the phase budget
    StateReader r(w.buffer());
    EXPECT_FALSE(a->load_state(r).ok());
  }
}

TEST(MixedAttackTest, ResetRestartsScheduleAndGenerators) {
  auto a = sweep_then_hammer(3);
  Rng rng(7);
  for (int i = 0; i < 10; ++i) a->next(rng, kLines);
  ASSERT_EQ(a->current_phase(), 1u);
  a->reset();
  EXPECT_EQ(a->current_phase(), 0u);
  EXPECT_EQ(a->next(rng, kLines).value(), 0u);  // sweep restarts at line 0
}

TEST(MixedAttackTest, ScheduleIntrospection) {
  auto a = sweep_then_hammer(42);
  EXPECT_EQ(a->phase_count(), 2u);
  EXPECT_EQ(a->phase_name(0), "uaa");
  EXPECT_EQ(a->phase_name(1), "hotspot");
  EXPECT_EQ(a->phase_writes(0), 42u);
  EXPECT_EQ(a->phase_writes(1), 0u);
  EXPECT_EQ(a->name(), "mixed");
}

}  // namespace
}  // namespace nvmsec
