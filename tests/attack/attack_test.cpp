#include "attack/attack.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "attack/bpa.h"
#include "attack/hotspot.h"
#include "attack/uaa.h"

namespace nvmsec {
namespace {

TEST(UaaTest, SweepsSequentiallyAndWraps) {
  auto a = make_uaa();
  Rng rng(1);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(a->next(rng, 10).value(), i);
    }
  }
}

TEST(UaaTest, EveryLineGetsExactlyOneWritePerLoop) {
  // §3.1: "UAA performs one write operation to each line one by one and
  // repeats such a procedure".
  auto a = make_uaa();
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 700; ++i) ++counts[a->next(rng, 100).value()];
  for (const auto& [addr, count] : counts) {
    EXPECT_EQ(count, 7) << "address " << addr;
  }
}

TEST(UaaTest, HandlesShrinkingSpace) {
  auto a = make_uaa();
  Rng rng(1);
  for (int i = 0; i < 8; ++i) a->next(rng, 10);
  // Space shrinks below the cursor: the sweep must wrap, not overflow.
  EXPECT_LT(a->next(rng, 5).value(), 5u);
}

TEST(UaaTest, ResetRestartsSweep) {
  auto a = make_uaa();
  Rng rng(1);
  a->next(rng, 10);
  a->next(rng, 10);
  a->reset();
  EXPECT_EQ(a->next(rng, 10).value(), 0u);
}

TEST(UaaTest, EmptySpaceThrows) {
  auto a = make_uaa();
  Rng rng(1);
  EXPECT_THROW(a->next(rng, 0), std::invalid_argument);
}

TEST(BpaTest, BurstsHammerOneAddress) {
  BirthdayParadoxAttack a(16);
  Rng rng(2);
  for (int burst = 0; burst < 10; ++burst) {
    const LogicalLineAddr first = a.next(rng, 1000);
    for (int i = 1; i < 16; ++i) {
      EXPECT_EQ(a.next(rng, 1000), first);
    }
  }
}

TEST(BpaTest, TargetsChangeAcrossBursts) {
  BirthdayParadoxAttack a(4);
  Rng rng(3);
  std::set<std::uint64_t> targets;
  for (int burst = 0; burst < 50; ++burst) {
    targets.insert(a.next(rng, 1ULL << 30).value());
    for (int i = 1; i < 4; ++i) a.next(rng, 1ULL << 30);
  }
  EXPECT_GT(targets.size(), 45u);  // collisions vanishingly unlikely
}

TEST(BpaTest, TargetsRoughlyUniform) {
  BirthdayParadoxAttack a(1);
  Rng rng(4);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[a.next(rng, 4).value()];
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(counts[v], kDraws / 4.0, 5 * std::sqrt(kDraws / 4.0));
  }
}

TEST(BpaTest, RepicksWhenSpaceShrinksBelowTarget) {
  BirthdayParadoxAttack a(1000);
  Rng rng(5);
  a.next(rng, 1000);  // target somewhere in [0, 1000)
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(a.next(rng, 3).value(), 3u);
  }
}

TEST(BpaTest, ZeroBurstThrows) {
  EXPECT_THROW(BirthdayParadoxAttack(0), std::invalid_argument);
}

TEST(BpaTest, ResetStartsNewBurst) {
  BirthdayParadoxAttack a(1000000);
  Rng rng(6);
  const LogicalLineAddr t1 = a.next(rng, 1ULL << 40);
  a.reset();
  const LogicalLineAddr t2 = a.next(rng, 1ULL << 40);
  EXPECT_NE(t1, t2);  // fresh random target (collision ~2^-40)
}

TEST(HotspotTest, CyclesThroughWorkingSet) {
  HotspotAttack a(3);
  Rng rng(7);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(a.next(rng, 100).value(), 0u);
    EXPECT_EQ(a.next(rng, 100).value(), 1u);
    EXPECT_EQ(a.next(rng, 100).value(), 2u);
  }
}

TEST(HotspotTest, WorkingSetClampedToSpace) {
  HotspotAttack a(10);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(a.next(rng, 4).value(), 4u);
  }
}

TEST(HotspotTest, ZeroWorkingSetThrows) {
  EXPECT_THROW(HotspotAttack(0), std::invalid_argument);
}

TEST(RandomUniformTest, CoversSpace) {
  auto a = make_random_uniform();
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(a->next(rng, 64).value());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(FactoryTest, KnownNames) {
  EXPECT_EQ(make_attack("uaa")->name(), "uaa");
  EXPECT_EQ(make_attack("bpa")->name(), "bpa");
  EXPECT_EQ(make_attack("hotspot")->name(), "hotspot");
  EXPECT_EQ(make_attack("random")->name(), "random");
  EXPECT_THROW(make_attack("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace nvmsec
