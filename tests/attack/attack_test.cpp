#include "attack/attack.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "attack/bpa.h"
#include "attack/hotspot.h"
#include "attack/uaa.h"

namespace nvmsec {
namespace {

TEST(UaaTest, SweepsSequentiallyAndWraps) {
  auto a = make_uaa();
  Rng rng(1);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(a->next(rng, 10).value(), i);
    }
  }
}

TEST(UaaTest, EveryLineGetsExactlyOneWritePerLoop) {
  // §3.1: "UAA performs one write operation to each line one by one and
  // repeats such a procedure".
  auto a = make_uaa();
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 700; ++i) ++counts[a->next(rng, 100).value()];
  for (const auto& [addr, count] : counts) {
    EXPECT_EQ(count, 7) << "address " << addr;
  }
}

TEST(UaaTest, HandlesShrinkingSpace) {
  auto a = make_uaa();
  Rng rng(1);
  for (int i = 0; i < 8; ++i) a->next(rng, 10);
  // Space shrinks below the cursor: the sweep must wrap, not overflow.
  EXPECT_LT(a->next(rng, 5).value(), 5u);
}

TEST(UaaTest, ResetRestartsSweep) {
  auto a = make_uaa();
  Rng rng(1);
  a->next(rng, 10);
  a->next(rng, 10);
  a->reset();
  EXPECT_EQ(a->next(rng, 10).value(), 0u);
}

TEST(UaaTest, EmptySpaceThrows) {
  auto a = make_uaa();
  Rng rng(1);
  EXPECT_THROW(a->next(rng, 0), std::invalid_argument);
}

TEST(BpaTest, BurstsHammerOneAddress) {
  BirthdayParadoxAttack a(16);
  Rng rng(2);
  for (int burst = 0; burst < 10; ++burst) {
    const LogicalLineAddr first = a.next(rng, 1000);
    for (int i = 1; i < 16; ++i) {
      EXPECT_EQ(a.next(rng, 1000), first);
    }
  }
}

TEST(BpaTest, TargetsChangeAcrossBursts) {
  BirthdayParadoxAttack a(4);
  Rng rng(3);
  std::set<std::uint64_t> targets;
  for (int burst = 0; burst < 50; ++burst) {
    targets.insert(a.next(rng, 1ULL << 30).value());
    for (int i = 1; i < 4; ++i) a.next(rng, 1ULL << 30);
  }
  EXPECT_GT(targets.size(), 45u);  // collisions vanishingly unlikely
}

TEST(BpaTest, TargetsRoughlyUniform) {
  BirthdayParadoxAttack a(1);
  Rng rng(4);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[a.next(rng, 4).value()];
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(counts[v], kDraws / 4.0, 5 * std::sqrt(kDraws / 4.0));
  }
}

TEST(BpaTest, RepicksWhenSpaceShrinksBelowTarget) {
  BirthdayParadoxAttack a(1000);
  Rng rng(5);
  a.next(rng, 1000);  // target somewhere in [0, 1000)
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(a.next(rng, 3).value(), 3u);
  }
}

TEST(BpaTest, ZeroBurstThrows) {
  EXPECT_THROW(BirthdayParadoxAttack(0), std::invalid_argument);
}

TEST(BpaTest, ResetStartsNewBurst) {
  BirthdayParadoxAttack a(1000000);
  Rng rng(6);
  const LogicalLineAddr t1 = a.next(rng, 1ULL << 40);
  a.reset();
  const LogicalLineAddr t2 = a.next(rng, 1ULL << 40);
  EXPECT_NE(t1, t2);  // fresh random target (collision ~2^-40)
}

TEST(HotspotTest, CyclesThroughWorkingSet) {
  HotspotAttack a(3);
  Rng rng(7);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(a.next(rng, 100).value(), 0u);
    EXPECT_EQ(a.next(rng, 100).value(), 1u);
    EXPECT_EQ(a.next(rng, 100).value(), 2u);
  }
}

TEST(HotspotTest, WorkingSetClampedToSpace) {
  HotspotAttack a(10);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(a.next(rng, 4).value(), 4u);
  }
}

TEST(HotspotTest, ZeroWorkingSetThrows) {
  EXPECT_THROW(HotspotAttack(0), std::invalid_argument);
}

TEST(RandomUniformTest, CoversSpace) {
  auto a = make_random_uniform();
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(a->next(rng, 64).value());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(FactoryTest, KnownNames) {
  EXPECT_EQ(make_attack("uaa")->name(), "uaa");
  EXPECT_EQ(make_attack("bpa")->name(), "bpa");
  EXPECT_EQ(make_attack("hotspot")->name(), "hotspot");
  EXPECT_EQ(make_attack("random")->name(), "random");
  EXPECT_THROW(make_attack("nope"), std::invalid_argument);
}

TEST(BatchContractTest, NamesAndFactoryClassification) {
  EXPECT_STREQ(batch_contract_name(BatchContract::kBitIdentical),
               "bit_identical");
  EXPECT_STREQ(batch_contract_name(BatchContract::kMultisetExact),
               "multiset_exact");
  EXPECT_STREQ(batch_contract_name(BatchContract::kDistributionEquivalent),
               "distribution_equivalent");
  EXPECT_EQ(attack_batch_contract("uaa"), BatchContract::kBitIdentical);
  EXPECT_EQ(attack_batch_contract("bpa"), BatchContract::kBitIdentical);
  EXPECT_EQ(attack_batch_contract("hotspot"), BatchContract::kMultisetExact);
  EXPECT_EQ(attack_batch_contract("random"),
            BatchContract::kDistributionEquivalent);
  EXPECT_EQ(attack_batch_contract("zipf"),
            BatchContract::kDistributionEquivalent);
  EXPECT_THROW(attack_batch_contract("nope"), std::invalid_argument);

  EXPECT_EQ(make_attack("uaa")->batch_contract(),
            BatchContract::kBitIdentical);
  EXPECT_EQ(make_attack("hotspot")->batch_contract(),
            BatchContract::kMultisetExact);
  EXPECT_EQ(make_attack("random")->batch_contract(),
            BatchContract::kDistributionEquivalent);
}

TEST(BatchContractTest, BitIdenticalAttacksDeclineCounts) {
  Rng rng(3);
  WriteCountVector out;
  EXPECT_FALSE(make_attack("uaa")->next_counts(rng, 64, 1000, out));
  EXPECT_FALSE(make_attack("bpa")->next_counts(rng, 64, 1000, out));
  EXPECT_TRUE(out.empty());
}

// next_counts must emit the exact multiset next() would: base = n/set
// everywhere plus one extra on the first n%set lines after the cursor,
// with the cursor advancing as if the writes were issued one by one.
TEST(HotspotTest, NextCountsMatchesPerWriteMultiset) {
  const std::uint64_t kSet = 7;
  const std::uint64_t kLines = 64;
  HotspotAttack batched(kSet);
  HotspotAttack per_write(kSet);
  Rng rng(5);
  std::map<std::uint64_t, std::uint64_t> expected;
  // Uneven chunk sizes exercise the cursor carry between chunks.
  for (const std::uint64_t chunk : {std::uint64_t{23}, std::uint64_t{7},
                                    std::uint64_t{100}, std::uint64_t{3}}) {
    expected.clear();
    for (std::uint64_t i = 0; i < chunk; ++i) {
      ++expected[per_write.next(rng, kLines).value()];
    }
    WriteCountVector out;
    ASSERT_TRUE(batched.next_counts(rng, kLines, chunk, out));
    EXPECT_EQ(out.total(), chunk);
    std::map<std::uint64_t, std::uint64_t> got;
    for (std::size_t i = 0; i < out.size(); ++i) {
      got[out.addrs[i]] += out.counts[i];
    }
    EXPECT_EQ(got, expected) << "chunk=" << chunk;
  }
}

TEST(HotspotTest, NextCountsSingleLineWorkingSet) {
  HotspotAttack a(1);
  Rng rng(2);
  WriteCountVector out;
  ASSERT_TRUE(a.next_counts(rng, 64, 500, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.addrs[0], 0u);
  EXPECT_EQ(out.counts[0], 500u);
}

TEST(RandomUniformTest, NextCountsConservesAndCoversSpace) {
  auto a = make_random_uniform();
  Rng rng(8);
  WriteCountVector out;
  ASSERT_TRUE(a->next_counts(rng, 64, 100'000, out));
  EXPECT_EQ(out.total(), 100'000u);
  EXPECT_EQ(out.size(), 64u);  // every line hit at ~1562 expected writes
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_LT(out.addrs[i], 64u);
    // Loose uniformity band: 6 sigma around n/64.
    EXPECT_NEAR(static_cast<double>(out.counts[i]), 100'000.0 / 64.0,
                6.0 * std::sqrt(100'000.0 / 64.0));
  }
}

}  // namespace
}  // namespace nvmsec
