#include "attack/trace.h"

#include <gtest/gtest.h>

#include <fstream>

namespace nvmsec {
namespace {

TEST(TraceRecorderTest, NullInnerRejected) {
  EXPECT_THROW(TraceRecorder(nullptr), std::invalid_argument);
}

TEST(TraceRecorderTest, RecordsPassThrough) {
  TraceRecorder rec(make_uaa());
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rec.next(rng, 4).value(), static_cast<std::uint64_t>(i) % 4);
  }
  ASSERT_EQ(rec.recorded().size(), 10u);
  EXPECT_EQ(rec.recorded()[5], 1u);
  EXPECT_EQ(rec.name(), "uaa+record");
}

TEST(TraceRecorderTest, ResetClearsRecordingAndInner) {
  TraceRecorder rec(make_uaa());
  Rng rng(1);
  rec.next(rng, 4);
  rec.next(rng, 4);
  rec.reset();
  EXPECT_TRUE(rec.recorded().empty());
  EXPECT_EQ(rec.next(rng, 4).value(), 0u);  // inner sweep restarted
}

TEST(TraceReplayTest, EmptyTraceRejected) {
  EXPECT_THROW(TraceReplay(std::vector<std::uint64_t>{}),
               std::invalid_argument);
}

TEST(TraceReplayTest, ReplaysAndLoops) {
  TraceReplay replay({5, 7, 2});
  Rng rng(1);
  EXPECT_EQ(replay.next(rng, 100).value(), 5u);
  EXPECT_EQ(replay.next(rng, 100).value(), 7u);
  EXPECT_EQ(replay.next(rng, 100).value(), 2u);
  EXPECT_EQ(replay.next(rng, 100).value(), 5u);  // looped
  EXPECT_EQ(replay.length(), 3u);
}

TEST(TraceReplayTest, FoldsIntoShrunkSpace) {
  TraceReplay replay({99});
  Rng rng(1);
  EXPECT_EQ(replay.next(rng, 10).value(), 9u);  // 99 % 10
}

TEST(TraceRoundTripTest, SaveThenReplayMatches) {
  const std::string path = ::testing::TempDir() + "/trace_test.txt";
  TraceRecorder rec(make_bpa(3));
  Rng rng(7);
  std::vector<std::uint64_t> generated;
  for (int i = 0; i < 50; ++i) {
    generated.push_back(rec.next(rng, 1000).value());
  }
  ASSERT_TRUE(rec.save(path).ok());

  TraceReplay replay = TraceReplay::from_file(path).take();
  ASSERT_EQ(replay.length(), 50u);
  Rng rng2(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(replay.next(rng2, 1000).value(),
              generated[static_cast<std::size_t>(i)]);
  }
}

TEST(TraceReplayTest, RejectsBadFiles) {
  const std::string dir = ::testing::TempDir();
  {
    const Result<TraceReplay> r = TraceReplay::from_file(dir + "/missing.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  }
  {
    std::ofstream out(dir + "/empty.txt");
  }
  {
    const Result<TraceReplay> r = TraceReplay::from_file(dir + "/empty.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
  {
    std::ofstream out(dir + "/bad_header.txt");
    out << "wrong\n1\n2\n";
  }
  {
    const Result<TraceReplay> r =
        TraceReplay::from_file(dir + "/bad_header.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
  {
    std::ofstream out(dir + "/bad_row.txt");
    out << "# maxwe-trace v1\n12\nnot-a-number\n";
  }
  {
    const Result<TraceReplay> r = TraceReplay::from_file(dir + "/bad_row.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    // The message names the file and line of the malformed address.
    EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
  }
  {
    std::ofstream out(dir + "/no_rows.txt");
    out << "# maxwe-trace v1\n";
  }
  {
    const Result<TraceReplay> r = TraceReplay::from_file(dir + "/no_rows.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(TraceRecorderTest, SaveToUnwritablePathReportsIoError) {
  TraceRecorder rec(make_uaa());
  const Status status = rec.save("/nonexistent-dir/trace.txt");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(TraceReplayTest, DriveableThroughTheEnginePipeline) {
  // A recorded UAA trace replayed through the event-style stochastic
  // pipeline behaves like the original attack.
  TraceReplay replay([]{
    std::vector<std::uint64_t> t;
    for (int round = 0; round < 4; ++round) {
      for (std::uint64_t a = 0; a < 16; ++a) t.push_back(a);
    }
    return t;
  }());
  Rng rng(1);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 64; ++i) ++counts[replay.next(rng, 16).value()];
  for (int c : counts) EXPECT_EQ(c, 4);
}

}  // namespace
}  // namespace nvmsec
