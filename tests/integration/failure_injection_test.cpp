// Failure injection: latent defects the manufacture-time endurance map did
// not know about. Device::weaken() caps a line's remaining writes; the
// wear-out still surfaces through the normal write path, so every spare
// scheme must cope without special handling.
#include <gtest/gtest.h>

#include <memory>

#include "attack/attack.h"
#include "core/maxwe.h"
#include "nvm/device.h"
#include "spare/freep.h"
#include "sim/engine.h"
#include "wearlevel/none.h"

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> ramp_map() {
  std::vector<Endurance> es;
  for (int r = 0; r < 16; ++r) es.push_back(100.0 * (r + 1));
  return std::make_shared<EnduranceMap>(DeviceGeometry::scaled(128, 16), es);
}

TEST(FailureInjectionTest, WeakenValidation) {
  Device d(ramp_map());
  EXPECT_THROW(d.weaken(PhysLineAddr{128}, 1), std::out_of_range);
  EXPECT_THROW(d.weaken(PhysLineAddr{0}, 0), std::invalid_argument);
  d.weaken(PhysLineAddr{0}, 1);
  d.write(PhysLineAddr{0});  // dies on this write
  EXPECT_THROW(d.weaken(PhysLineAddr{0}, 5), std::logic_error);
}

TEST(FailureInjectionTest, WeakenOnlyLowers) {
  Device d(ramp_map());
  d.weaken(PhysLineAddr{0}, 5);
  EXPECT_EQ(d.remaining(PhysLineAddr{0}), 5u);
  d.weaken(PhysLineAddr{0}, 1000);  // cannot raise
  EXPECT_EQ(d.remaining(PhysLineAddr{0}), 5u);
}

TEST(FailureInjectionTest, WeakenedLineDiesThroughNormalWearOutEvent) {
  Device d(ramp_map());
  d.weaken(PhysLineAddr{3}, 2);
  EXPECT_EQ(d.write(PhysLineAddr{3}), WriteOutcome::kOk);
  EXPECT_EQ(d.write(PhysLineAddr{3}), WriteOutcome::kWornOut);
  EXPECT_EQ(d.worn_out_count(), 1u);
}

TEST(FailureInjectionTest, MaxWeAbsorbsInjectedDefectsInStrongRegions) {
  // Defects in strong (non-RWR) regions are exactly what the additional
  // spare regions are for: the run must survive past the defects and the
  // LMT must carry the remapping.
  auto map = ramp_map();
  Device device(map);
  // Inject early deaths into the strongest regions (14, 15).
  device.weaken(PhysLineAddr{14 * 8 + 2}, 3);
  device.weaken(PhysLineAddr{15 * 8 + 5}, 3);

  MaxWeParams params;
  params.spare_fraction = 0.25;
  params.swr_fraction = 0.5;
  MaxWe maxwe(map, params);
  auto attack = make_uaa();
  NoWearLeveling wl(maxwe.working_lines());
  Rng rng(1);
  Engine engine(device, *attack, wl, maxwe, rng);
  const LifetimeResult r = engine.run();
  EXPECT_TRUE(r.failed);
  // Both defective lines must have been rescued via line-level mapping
  // before the device's natural end.
  EXPECT_TRUE(device.is_worn_out(PhysLineAddr{14 * 8 + 2}));
  EXPECT_TRUE(device.is_worn_out(PhysLineAddr{15 * 8 + 5}));
  EXPECT_GE(maxwe.lmt().size(), 1u);
  // The defects cost two spare lines but not the device's lifetime class:
  // still far beyond the unprotected bound of N * EL.
  EXPECT_GT(r.user_writes, 128.0 * 100.0);
}

TEST(FailureInjectionTest, UnprotectedDeviceDiesAtInjectedDefect) {
  auto map = ramp_map();
  Device device(map);
  device.weaken(PhysLineAddr{100}, 7);
  auto attack = make_uaa();
  NoWearLeveling wl(128);
  auto spare = make_no_spare(map);
  Rng rng(1);
  Engine engine(device, *attack, wl, *spare, rng);
  const LifetimeResult r = engine.run();
  EXPECT_TRUE(r.failed);
  // Dies on the defective line's 7th write: 6 full sweeps + its slot.
  EXPECT_DOUBLE_EQ(r.user_writes, 6.0 * 128.0 + 101.0);
}

TEST(FailureInjectionTest, MassInjectionStressesEverySpareScheme) {
  // Kill-soon 10% of random lines; every scheme must either survive and
  // remap them or fail cleanly — no crashes, no accounting drift.
  for (const std::string scheme : {"pcd", "ps", "ps-worst", "freep",
                                   "maxwe"}) {
    auto map = ramp_map();
    Device device(map);
    Rng inject_rng(9);
    for (int k = 0; k < 12; ++k) {
      const PhysLineAddr line{inject_rng.uniform_u64(128)};
      if (!device.is_worn_out(line) && device.remaining(line) > 2) {
        device.weaken(line, 2);
      }
    }
    Rng rng(10);
    std::unique_ptr<SpareScheme> spare;
    if (scheme == "pcd") {
      spare = make_pcd(map, 32, rng);
    } else if (scheme == "ps") {
      spare = make_ps(map, 32, rng);
    } else if (scheme == "ps-worst") {
      spare = make_ps_worst(map, 32, rng);
    } else if (scheme == "freep") {
      spare = make_freep(map, 32);
    } else {
      MaxWeParams p;
      p.spare_fraction = 0.25;
      p.swr_fraction = 0.5;
      spare = make_maxwe(map, p);
    }
    auto attack = make_uaa();
    NoWearLeveling wl(spare->working_lines());
    Engine engine(device, *attack, wl, *spare, rng);
    const LifetimeResult r = engine.run();
    EXPECT_TRUE(r.failed) << scheme;
    EXPECT_GT(r.user_writes, 0.0) << scheme;
    EXPECT_EQ(r.device_writes,
              static_cast<WriteCount>(r.user_writes) + r.overhead_writes)
        << scheme;
  }
}

}  // namespace
}  // namespace nvmsec
