// Golden regression values: fixed-seed results recorded from a verified
// build. Tolerances are loose enough to survive benign floating-point
// differences but tight enough to catch any behavioural change in the
// endurance model, the engines, or a scheme's allocation logic.
//
// If a test here fails after an intentional change, re-derive the value
// (run the experiment, eyeball it against the paper's shape targets in
// EXPERIMENTS.md) and update the constant in the same commit as the
// change.
#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/overhead.h"
#include "sim/experiment.h"

namespace nvmsec {
namespace {

ExperimentConfig golden_config(const std::string& scheme) {
  ExperimentConfig c;  // paper 1 GB geometry, UAA, event engine, k=8 model
  c.spare_scheme = scheme;
  c.seed = 42;
  return c;
}

TEST(GoldenTest, UnprotectedFullScaleSeed42) {
  const double lifetime = run_experiment(golden_config("none")).normalized;
  EXPECT_NEAR(lifetime, 0.0535, 0.0005);
}

TEST(GoldenTest, MaxWeFullScaleSeed42) {
  const double lifetime = run_experiment(golden_config("maxwe")).normalized;
  EXPECT_NEAR(lifetime, 0.2688, 0.0027);
}

TEST(GoldenTest, PcdFullScaleSeed42) {
  const double lifetime = run_experiment(golden_config("pcd")).normalized;
  EXPECT_NEAR(lifetime, 0.1986, 0.0020);
}

TEST(GoldenTest, PsWorstFullScaleSeed42) {
  const double lifetime = run_experiment(golden_config("ps-worst")).normalized;
  EXPECT_NEAR(lifetime, 0.1844, 0.0019);
}

TEST(GoldenTest, AnalyticSpotValuesAreExact) {
  // Pure closed forms: no tolerance games needed.
  const Fig5Point pt = fig5_point(0.1, 50.0);
  EXPECT_NEAR(pt.maxwe, 0.3811, 0.0001);
  EXPECT_NEAR(pt.pcd_ps, 0.2217, 0.0001);
  EXPECT_NEAR(pt.ps_worst, 0.2082, 0.0001);
}

TEST(GoldenTest, MappingOverheadIsExact) {
  const auto out = mapping_overhead(MappingOverheadInputs::from_geometry(
      DeviceGeometry::paper_1gb(), 0.1, 0.9));
  EXPECT_NEAR(out.maxwe_total_mb(), 0.15524, 0.00001);
  EXPECT_NEAR(out.traditional_mb(), 1.09999, 0.0001);
  EXPECT_NEAR(out.ratio, 0.14113, 0.00002);
}

TEST(GoldenTest, BpaStochasticScaledSeed7) {
  ExperimentConfig c = scaled_stochastic_config(2048, 128, 5e4);
  c.attack = "bpa";
  c.wear_leveler = "tlsr";
  c.spare_scheme = "maxwe";
  c.seed = 7;
  const double lifetime = run_experiment(c).normalized;
  // Stochastic path: bigger tolerance, still catches structural drift.
  EXPECT_NEAR(lifetime, 0.23, 0.05);
}

}  // namespace
}  // namespace nvmsec
