// Property-based sweeps: invariants that must hold for EVERY combination of
// attack, wear leveler and spare scheme, not just the paper's operating
// points.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.h"

namespace nvmsec {
namespace {

using Combo = std::tuple<std::string, std::string, std::string>;

class PipelinePropertyTest : public ::testing::TestWithParam<Combo> {};

TEST_P(PipelinePropertyTest, LifetimeInvariants) {
  const auto& [attack, wl, spare] = GetParam();
  ExperimentConfig c = scaled_stochastic_config(1024, 64, 3000);
  c.attack = attack;
  c.wear_leveler = wl;
  c.spare_scheme = spare;
  c.seed = 11;
  const LifetimeResult r = run_experiment(c);

  // The run must end in device failure (no cap was set)...
  EXPECT_TRUE(r.failed);
  EXPECT_FALSE(r.failure_reason.empty());
  // ...after at least one wear-out...
  EXPECT_GE(r.line_deaths, 1u);
  // ...with a normalized lifetime in (0, 1].
  EXPECT_GT(r.normalized, 0.0);
  EXPECT_LE(r.normalized, 1.0);
  // Physical writes are conserved: device = (user - absorbed) + overhead.
  EXPECT_EQ(r.device_writes,
            static_cast<WriteCount>(r.user_writes) - r.absorbed_writes +
                r.overhead_writes);
  // The device cannot absorb more than the sum of its budgets.
  EXPECT_LE(static_cast<double>(r.device_writes), r.ideal_lifetime);
}

TEST_P(PipelinePropertyTest, SameSeedSameResult) {
  const auto& [attack, wl, spare] = GetParam();
  ExperimentConfig c = scaled_stochastic_config(512, 32, 2000);
  c.attack = attack;
  c.wear_leveler = wl;
  c.spare_scheme = spare;
  c.seed = 23;
  const LifetimeResult a = run_experiment(c);
  const LifetimeResult b = run_experiment(c);
  EXPECT_DOUBLE_EQ(a.user_writes, b.user_writes);
  EXPECT_EQ(a.device_writes, b.device_writes);
  EXPECT_EQ(a.line_deaths, b.line_deaths);
}

INSTANTIATE_TEST_SUITE_P(
    AttackByLevelerBySpare, PipelinePropertyTest,
    ::testing::Combine(
        ::testing::Values("uaa", "bpa", "random"),
        ::testing::Values("none", "tlsr", "wawl", "twl"),
        ::testing::Values("none", "pcd", "ps", "ps-worst", "maxwe")),
    [](const ::testing::TestParamInfo<Combo>& info) {
      auto sanitize = [](std::string s) {
        for (char& ch : s) {
          if (ch == '-') ch = '_';
        }
        return s;
      };
      return sanitize(std::get<0>(info.param)) + "_" +
             sanitize(std::get<1>(info.param)) + "_" +
             sanitize(std::get<2>(info.param));
    });

class SpareFractionMonotoneTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(SpareFractionMonotoneTest, MoreSparesNeverHurtUnderUaa) {
  // Event-engine sweep: averaged over seeds, lifetime is monotone
  // non-decreasing in the spare budget for every scheme.
  const std::string scheme = GetParam();
  double prev = 0.0;
  for (double p : {0.05, 0.10, 0.20, 0.30}) {
    double acc = 0;
    for (std::uint64_t seed : {3, 4, 5}) {
      ExperimentConfig c;
      c.geometry = DeviceGeometry::scaled(1 << 14, 256);
      c.endurance.endurance_at_mean = 1e6;
      c.spare_scheme = scheme;
      c.spare_fraction = p;
      c.seed = seed;
      acc += run_experiment(c).normalized;
    }
    const double lifetime = acc / 3;
    EXPECT_GE(lifetime, prev * 0.98) << scheme << " at p=" << p;
    prev = lifetime;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SpareFractionMonotoneTest,
                         ::testing::Values("maxwe", "pcd", "ps"));

class SwrFractionSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SwrFractionSweepTest, EverySplitYieldsAValidDevice) {
  ExperimentConfig c;
  c.geometry = DeviceGeometry::scaled(1 << 13, 128);
  c.endurance.endurance_at_mean = 1e5;
  c.spare_scheme = "maxwe";
  c.swr_fraction = GetParam();
  const LifetimeResult r = run_experiment(c);
  EXPECT_TRUE(r.failed);
  EXPECT_GT(r.normalized, 0.0);
  EXPECT_LE(r.normalized, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Splits, SwrFractionSweepTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.9, 1.0));

TEST(PropertyTest, EnduranceScaleInvarianceOfNormalizedLifetime) {
  // Normalized lifetime under UAA (event engine) is invariant to the
  // endurance scale: only the distribution shape matters.
  auto lifetime_at_scale = [](double scale) {
    ExperimentConfig c;
    c.geometry = DeviceGeometry::scaled(1 << 13, 128);
    c.endurance.endurance_at_mean = scale;
    c.spare_scheme = "maxwe";
    c.seed = 77;
    return run_experiment(c).normalized;
  };
  const double small = lifetime_at_scale(1e4);
  const double large = lifetime_at_scale(1e8);
  EXPECT_NEAR(small, large, 0.002);  // only integer-rounding differences
}

TEST(PropertyTest, RegionCountShapesButDeviceSizeDoesNot) {
  // With the region count fixed, doubling the line count leaves the
  // normalized lifetime roughly unchanged (same distribution, same roles).
  auto lifetime_with_lines = [](std::uint64_t lines) {
    ExperimentConfig c;
    c.geometry = DeviceGeometry::scaled(lines, 128);
    c.endurance.endurance_at_mean = 1e6;
    c.spare_scheme = "maxwe";
    c.seed = 78;
    return run_experiment(c).normalized;
  };
  EXPECT_NEAR(lifetime_with_lines(1 << 13), lifetime_with_lines(1 << 15),
              0.01);
}

}  // namespace
}  // namespace nvmsec
