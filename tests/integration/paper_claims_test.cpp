// End-to-end regression of the paper's quantitative claims at reduced scale
// (the bench harness regenerates the full-scale numbers; these tests pin
// the *shape* so refactors cannot silently break a reproduced result).
#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/overhead.h"
#include "sim/experiment.h"
#include "util/stats.h"

namespace nvmsec {
namespace {

double event_lifetime(const std::string& scheme, double spare_fraction,
                      double swr_fraction = 0.9, double jitter = 0.0) {
  double acc = 0;
  const int seeds = 3;
  for (int s = 0; s < seeds; ++s) {
    ExperimentConfig c;
    c.geometry = DeviceGeometry::scaled(1 << 15, 512);  // 32K lines
    c.endurance.endurance_at_mean = 1e6;
    c.spare_fraction = spare_fraction;
    // A budget that rounds to zero regions means "no protection".
    c.spare_scheme = c.spare_lines() == 0 ? "none" : scheme;
    c.swr_fraction = swr_fraction;
    c.line_jitter_sigma = jitter;
    c.seed = 100 + static_cast<std::uint64_t>(s);
    acc += run_experiment(c).normalized;
  }
  return acc / seeds;
}

TEST(PaperClaimsTest, UaaCollapsesUnprotectedLifetime) {
  // Abstract: "the lifetime of NVMs under UAA is reduced to 4.1% of the
  // ideal lifetime". Our calibrated model lands in the same few-percent
  // band (see EXPERIMENTS.md for the full-scale measurement).
  const double unprotected = event_lifetime("none", 0.0);
  EXPECT_LT(unprotected, 0.10);
  EXPECT_GT(unprotected, 0.01);
}

TEST(PaperClaimsTest, MaxWeLifetimeImprovementIsLarge) {
  // Abstract: "Max-WE can improve the lifetime by 9.5X with the spare-line
  // overhead ... 10%". We require a multi-x improvement.
  const double unprotected = event_lifetime("none", 0.0);
  const double maxwe = event_lifetime("maxwe", 0.10);
  EXPECT_GT(maxwe / unprotected, 3.0);
}

TEST(PaperClaimsTest, Section531SchemeOrdering) {
  // §5.3.1: Max-WE 43.1% > PCD/PS 30.6% > PS-worst 28.5% under UAA at 10%
  // spares.
  const double maxwe = event_lifetime("maxwe", 0.10);
  const double pcd = event_lifetime("pcd", 0.10);
  const double ps = event_lifetime("ps", 0.10);
  const double ps_worst = event_lifetime("ps-worst", 0.10);
  EXPECT_GT(maxwe, pcd);
  EXPECT_GT(maxwe, ps);
  EXPECT_GT(ps, ps_worst);
  // §4.3: PCD approximates the average case of PS ("less than 3.0%").
  EXPECT_NEAR(pcd, ps, 0.05 * pcd + 0.02);
}

TEST(PaperClaimsTest, Figure6LifetimeRisesWithSpareFraction) {
  // Fig. 6: {0, 1, 10, 20, 30}% spares -> monotone increasing lifetime.
  double prev = 0.0;
  for (double p : {0.0, 0.01, 0.10, 0.20, 0.30}) {
    const double lifetime = event_lifetime("maxwe", p);
    EXPECT_GT(lifetime, prev) << "p=" << p;
    prev = lifetime;
  }
}

TEST(PaperClaimsTest, Figure6SaturatesAtHighSpareFractions) {
  // Fig. 6: 86.9% at 40% spares vs 87.4% at 50% — the marginal gain of the
  // last 10% of spares is small compared to the first 10%.
  const double at_0 = event_lifetime("maxwe", 0.0);
  const double at_10 = event_lifetime("maxwe", 0.10);
  const double at_40 = event_lifetime("maxwe", 0.40);
  const double at_49 = event_lifetime("maxwe", 0.49);
  EXPECT_GT(at_10 - at_0, at_49 - at_40);
}

TEST(PaperClaimsTest, AnalyticFigure5SpotValues) {
  // §4.3's spot check, straight from Eqs. (6)-(8).
  const Fig5Point pt = fig5_point(0.1, 50.0);
  EXPECT_NEAR(pt.maxwe, 0.381, 0.002);
  EXPECT_NEAR(pt.pcd_ps, 0.222, 0.002);
  EXPECT_NEAR(pt.ps_worst, 0.208, 0.002);
}

TEST(PaperClaimsTest, MappingOverheadReduction85Percent) {
  const auto out = mapping_overhead(MappingOverheadInputs::from_geometry(
      DeviceGeometry::paper_1gb(), 0.1, 0.9));
  EXPECT_NEAR(out.ratio, 0.15, 0.01);
}

TEST(PaperClaimsTest, BpaSchemeOrderingAtScaledSize) {
  // Fig. 8's qualitative content: under BPA, Max-WE >= PCD/PS >= PS-worst
  // for the oblivious wear levelers, and the endurance-aware wear levelers
  // (BWL, WAWL) lift everyone. (The full sweep lives in the fig8 bench.)
  auto bpa_lifetime = [&](const std::string& wl, const std::string& scheme) {
    double acc = 0;
    const int seeds = 2;
    for (int s = 0; s < seeds; ++s) {
      ExperimentConfig c = scaled_stochastic_config(2048, 128, 5e4);
      c.attack = "bpa";
      c.wear_leveler = wl;
      c.spare_scheme = scheme;
      c.seed = 50 + static_cast<std::uint64_t>(s);
      acc += run_experiment(c).normalized;
    }
    return acc / seeds;
  };
  const double tlsr_maxwe = bpa_lifetime("tlsr", "maxwe");
  const double tlsr_worst = bpa_lifetime("tlsr", "ps-worst");
  EXPECT_GT(tlsr_maxwe, tlsr_worst);
  const double wawl_maxwe = bpa_lifetime("wawl", "maxwe");
  EXPECT_GT(wawl_maxwe, tlsr_maxwe);  // endurance-aware WL helps
}

TEST(PaperClaimsTest, Figure7AllAsrBeatsAllSwr) {
  // Fig. 7: lifetime decreases as the SWR share grows; 0% SWR (all
  // line-level) is the best configuration, 100% SWR the worst.
  auto bpa_maxwe = [&](double swr_fraction) {
    double acc = 0;
    const int seeds = 2;
    for (int s = 0; s < seeds; ++s) {
      ExperimentConfig c = scaled_stochastic_config(2048, 128, 5e4);
      c.attack = "bpa";
      c.wear_leveler = "tlsr";
      c.spare_scheme = "maxwe";
      c.swr_fraction = swr_fraction;
      c.seed = 60 + static_cast<std::uint64_t>(s);
      acc += run_experiment(c).normalized;
    }
    return acc / seeds;
  };
  const double all_asr = bpa_maxwe(0.0);
  const double all_swr = bpa_maxwe(1.0);
  EXPECT_GT(all_asr, all_swr);
}

}  // namespace
}  // namespace nvmsec
