// Attack-vs-defense integration matrix (§3.3): which attacks defeat which
// wear levelers, and how Max-WE changes the picture.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace nvmsec {
namespace {

double lifetime(const std::string& attack, const std::string& wl,
                const std::string& spare, std::uint64_t seed = 1) {
  ExperimentConfig c = scaled_stochastic_config(1024, 64, 2e4);
  c.attack = attack;
  c.wear_leveler = wl;
  c.spare_scheme = spare;
  c.seed = seed;
  return run_experiment(c).normalized;
}

double fine_grained_lifetime(const std::string& attack, const std::string& wl,
                             std::uint64_t seed = 1) {
  // Tighter remap cadence so the per-dwell wear stays well below the
  // weakest line's endurance even at this scaled size (the full-scale
  // regime; see EXPERIMENTS.md "Scaling").
  ExperimentConfig c = scaled_stochastic_config(1024, 64, 2e4);
  c.attack = attack;
  c.wear_leveler = wl;
  c.spare_scheme = "none";
  c.wl.swap_interval = 8;
  c.wl.tlsr_subregion_lines = 8;
  c.seed = seed;
  return run_experiment(c).normalized;
}

TEST(AttackResistanceTest, HotspotDestroysUnleveledDevice) {
  // A single hammered address on an identity mapping burns one line: the
  // lifetime is a single line's endurance out of the whole device's
  // (1/1024 of the lines, scaled by that line's relative endurance).
  const double l = lifetime("hotspot", "none", "none");
  EXPECT_LT(l, 0.005);
}

TEST(AttackResistanceTest, RandomizingWearLevelersDefeatHotspot) {
  // TLSR and PCM-S turn a hammered address into (bursty) uniform traffic,
  // so the hotspot lifetime approaches the uniform-attack lifetime — the
  // best any oblivious scheme can do — instead of a single line's
  // endurance.
  const double uniform_bound = fine_grained_lifetime("uaa", "none");
  for (const std::string wl : {"tlsr", "pcms"}) {
    const double hotspot = fine_grained_lifetime("hotspot", wl);
    EXPECT_GT(hotspot, 0.15 * uniform_bound) << wl;
  }
}

TEST(AttackResistanceTest, UaaDefeatsEveryWearLeveler) {
  // §3.3.1: under UAA "no lines can be identified as hot lines and the
  // remapping scheme will never be [useful]" — every wear leveler's
  // lifetime collapses to (at most marginally above) the unleveled one.
  const double unleveled = lifetime("uaa", "none", "none");
  for (const std::string wl : {"startgap", "tlsr", "pcms", "bwl", "wawl"}) {
    const double leveled = lifetime("uaa", wl, "none");
    EXPECT_LT(leveled, 3 * unleveled) << wl;
  }
}

TEST(AttackResistanceTest, RemappingAggravatesWearUnderUaa) {
  // Fig. 2's point: migration writes are pure overhead under UAA, so a
  // remapping wear leveler can only shorten the lifetime (or match it).
  const double unleveled = lifetime("uaa", "none", "none");
  const double tlsr = lifetime("uaa", "tlsr", "none");
  EXPECT_LE(tlsr, unleveled * 1.05);
}

TEST(AttackResistanceTest, MaxWeRaisesLifetimeUnderEveryAttack) {
  for (const std::string attack : {"uaa", "bpa", "random"}) {
    const double without = lifetime(attack, "tlsr", "none");
    const double with_maxwe = lifetime(attack, "tlsr", "maxwe");
    EXPECT_GT(with_maxwe, without) << attack;
  }
}

TEST(AttackResistanceTest, BpaIsWeakerThanUaaAgainstProtectedDevice) {
  // Against Max-WE + a randomizing wear leveler, hammering bursts spread
  // like uniform writes; BPA should not beat UAA by much, if at all.
  const double uaa = lifetime("uaa", "tlsr", "maxwe");
  const double bpa = lifetime("bpa", "tlsr", "maxwe");
  EXPECT_GT(bpa, 0.3 * uaa);
}

TEST(AttackResistanceTest, WearLevelerOverheadVisibleInResults) {
  ExperimentConfig c = scaled_stochastic_config(1024, 64, 2e4);
  c.attack = "uaa";
  c.wear_leveler = "pcms";
  c.spare_scheme = "none";
  const LifetimeResult r = run_experiment(c);
  EXPECT_GT(r.overhead_writes, 0u);
  EXPECT_EQ(r.device_writes,
            static_cast<WriteCount>(r.user_writes) + r.overhead_writes);
}

}  // namespace
}  // namespace nvmsec
