#include "fault/device_faults.h"

#include <gtest/gtest.h>

#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/failing_stream.h"
#include "fault/metadata_faults.h"
#include "nvm/device.h"
#include "nvm/endurance_io.h"
#include "sim/experiment.h"
#include "util/serialize.h"

namespace nvmsec {
namespace {

EnduranceMap uniform_map(std::uint64_t lines, std::uint64_t regions,
                         Endurance endurance) {
  return EnduranceMap::uniform(DeviceGeometry::scaled(lines, regions),
                               endurance);
}

std::uint64_t count_lines_at(const EnduranceMap& map, Endurance endurance) {
  std::uint64_t n = 0;
  for (std::uint64_t l = 0; l < map.geometry().num_lines(); ++l) {
    if (map.line_endurance(PhysLineAddr{l}) == endurance) ++n;
  }
  return n;
}

TEST(DeviceFaultTest, StuckAtLinesDieOnFirstWrite) {
  EnduranceMap map = uniform_map(256, 32, 1000.0);
  DeviceFaultParams p;
  p.stuck_at_lines = 5;
  const DeviceFaultReport report = apply_device_faults(map, p, 1);
  EXPECT_EQ(report.stuck_at_lines, 5u);
  EXPECT_EQ(count_lines_at(map, 1.0), 5u);
  EXPECT_EQ(count_lines_at(map, 1000.0), 251u);
}

TEST(DeviceFaultTest, EarlyDeathLinesAreScaled) {
  EnduranceMap map = uniform_map(256, 32, 1000.0);
  DeviceFaultParams p;
  p.early_death_lines = 3;
  p.early_death_fraction = 0.01;
  const DeviceFaultReport report = apply_device_faults(map, p, 1);
  EXPECT_EQ(report.early_death_lines, 3u);
  EXPECT_EQ(count_lines_at(map, 10.0), 3u);
}

TEST(DeviceFaultTest, LineFaultsSampleWithoutReplacement) {
  EnduranceMap map = uniform_map(256, 32, 1000.0);
  DeviceFaultParams p;
  p.stuck_at_lines = 4;
  p.early_death_lines = 4;
  p.early_death_fraction = 0.01;
  apply_device_faults(map, p, 3);
  // No line is both stuck-at and early-death: the counts stay disjoint.
  EXPECT_EQ(count_lines_at(map, 1.0), 4u);
  EXPECT_EQ(count_lines_at(map, 10.0), 4u);
  EXPECT_EQ(count_lines_at(map, 1000.0), 248u);
}

TEST(DeviceFaultTest, OutlierRegionsAreScaled) {
  EnduranceMap map = uniform_map(256, 32, 1000.0);
  DeviceFaultParams p;
  p.outlier_regions = 2;
  p.outlier_factor = 0.25;
  const DeviceFaultReport report = apply_device_faults(map, p, 1);
  EXPECT_EQ(report.outlier_regions, 2u);
  std::uint64_t outliers = 0;
  for (std::uint64_t r = 0; r < 32; ++r) {
    const Endurance e = map.region_endurance(RegionId{r});
    if (e == 250.0) ++outliers;
    else EXPECT_DOUBLE_EQ(e, 1000.0) << "region " << r;
  }
  EXPECT_EQ(outliers, 2u);
}

TEST(DeviceFaultTest, SameSeedSamePlacement) {
  DeviceFaultParams p;
  p.stuck_at_lines = 6;
  p.outlier_regions = 3;
  EnduranceMap a = uniform_map(1024, 32, 1000.0);
  EnduranceMap b = uniform_map(1024, 32, 1000.0);
  EnduranceMap c = uniform_map(1024, 32, 1000.0);
  apply_device_faults(a, p, 42);
  apply_device_faults(b, p, 42);
  apply_device_faults(c, p, 43);
  bool c_differs = false;
  for (std::uint64_t l = 0; l < 1024; ++l) {
    EXPECT_EQ(a.line_endurance(PhysLineAddr{l}),
              b.line_endurance(PhysLineAddr{l}));
    if (a.line_endurance(PhysLineAddr{l}) !=
        c.line_endurance(PhysLineAddr{l})) {
      c_differs = true;
    }
  }
  EXPECT_TRUE(c_differs);
}

TEST(DeviceFaultTest, RejectsPlansThatDoNotFit) {
  DeviceFaultParams p;
  p.stuck_at_lines = 200;
  p.early_death_lines = 100;  // 300 faulty lines > 256 lines
  {
    EnduranceMap map = uniform_map(256, 32, 1000.0);
    EXPECT_THROW(apply_device_faults(map, p, 1), std::invalid_argument);
  }
  p = {};
  p.early_death_lines = 1;
  p.early_death_fraction = 0.0;
  {
    EnduranceMap map = uniform_map(256, 32, 1000.0);
    EXPECT_THROW(apply_device_faults(map, p, 1), std::invalid_argument);
  }
  p = {};
  p.outlier_regions = 33;  // > 32 regions
  {
    EnduranceMap map = uniform_map(256, 32, 1000.0);
    EXPECT_THROW(apply_device_faults(map, p, 1), std::invalid_argument);
  }
  p = {};
  p.outlier_regions = 1;
  p.outlier_factor = -0.5;
  {
    EnduranceMap map = uniform_map(256, 32, 1000.0);
    EXPECT_THROW(apply_device_faults(map, p, 1), std::invalid_argument);
  }
}

TEST(FailingStreamTest, WritesFailAfterBudget) {
  std::stringbuf inner;
  FailingStreamBuf failing(&inner, 5);
  std::ostream out(&failing);
  out << "123456789";
  EXPECT_TRUE(out.fail());  // short write puts badbit on the stream
  EXPECT_EQ(inner.str(), "12345");
  EXPECT_EQ(failing.bytes_passed(), 5u);
}

TEST(FailingStreamTest, ReadsHitEofAfterBudget) {
  std::stringbuf inner("abcdefgh");
  FailingStreamBuf failing(&inner, 3);
  std::istream in(&failing);
  std::string word;
  in >> word;
  EXPECT_EQ(word, "abc");
  EXPECT_TRUE(in.eof());
  char extra = 0;
  EXPECT_FALSE(in.get(extra));
}

TEST(FailingStreamTest, TruncatedReadsSurfaceAsStructuredErrors) {
  // A reader fed a stream that dies mid-file must return a structured
  // error, never a partial silently-accepted map.
  const EnduranceMap map = uniform_map(256, 32, 1000.0);
  std::stringstream full;
  write_endurance_csv(map, full);
  const std::string text = full.str();

  std::stringbuf inner(text);
  FailingStreamBuf failing(&inner, text.size() / 2);
  std::istream in(&failing);
  const Result<EnduranceMap> r = read_endurance_csv(in);
  ASSERT_FALSE(r.ok());
  // Depending on where the stream dies the reader sees either an early end
  // of input (data loss) or a torn row (corruption); both are structured.
  EXPECT_TRUE(r.status().code() == StatusCode::kDataLoss ||
              r.status().code() == StatusCode::kCorruption)
      << r.status().to_string();
}

TEST(MetadataFaultTest, DueFollowsTheCadence) {
  MetadataFaultParams p;
  p.flip_interval = 100;
  const MetadataFaultInjector injector(p, 7);
  EXPECT_FALSE(injector.due(0));
  EXPECT_FALSE(injector.due(99));
  EXPECT_TRUE(injector.due(100));
  EXPECT_TRUE(injector.due(101));
  const MetadataFaultInjector disabled(MetadataFaultParams{}, 7);
  EXPECT_FALSE(disabled.due(1u << 30));
}

TEST(MetadataFaultTest, SingleBitFlipsAreDetectedAndRepaired) {
  // Region r has endurance 10*(r+1): ascending ramp, so roles are fixed.
  std::vector<Endurance> es;
  for (int r = 0; r < 32; ++r) es.push_back(10.0 * (r + 1));
  auto map = std::make_shared<EnduranceMap>(DeviceGeometry::scaled(256, 32),
                                            es);
  MaxWeParams params;
  params.spare_fraction = 0.25;
  params.swr_fraction = 0.75;
  MaxWe faulted(map, params);
  const MaxWe pristine(map, params);
  const Device device(map);

  MetadataFaultParams p;
  p.flip_interval = 1;
  MetadataFaultInjector injector(p, 11);
  for (int i = 0; i < 20; ++i) {
    const ScrubReport report = injector.inject_and_scrub(faulted, device);
    EXPECT_GE(report.rmt_corrupt_detected + report.lmt_corrupt_detected, 1u);
    EXPECT_GE(report.entries_repaired, 1u);
  }
  EXPECT_EQ(injector.injected(), 20u);
  // Every flip is a single-bit corruption, so the per-entry CRC/parity
  // checks catch all of them and every scrub restores ground truth.
  EXPECT_EQ(injector.detected(), 20u);
  EXPECT_EQ(injector.repaired(), 20u);

  EXPECT_TRUE(faulted.rmt().verify().empty());
  EXPECT_TRUE(faulted.lmt().verify().empty());
  for (RegionId pra : pristine.rwr_regions()) {
    EXPECT_EQ(faulted.rmt().spare_of(pra), pristine.rmt().spare_of(pra));
  }
  EXPECT_EQ(faulted.rmt().tags_set(), pristine.rmt().tags_set());
  EXPECT_EQ(faulted.lmt().size(), pristine.lmt().size());
}

TEST(MetadataFaultTest, StateRoundTripsThroughSerializer) {
  std::vector<Endurance> es;
  for (int r = 0; r < 32; ++r) es.push_back(10.0 * (r + 1));
  auto map = std::make_shared<EnduranceMap>(DeviceGeometry::scaled(256, 32),
                                            es);
  MaxWeParams params;
  params.spare_fraction = 0.25;
  MaxWe scheme(map, params);
  const Device device(map);

  MetadataFaultParams p;
  p.flip_interval = 10;
  MetadataFaultInjector a(p, 3);
  a.inject_and_scrub(scheme, device);
  a.inject_and_scrub(scheme, device);

  StateWriter w;
  a.save_state(w);
  const std::vector<std::uint8_t> buf = w.take();
  MetadataFaultInjector b(p, 999);  // seed overwritten by load_state
  StateReader r(buf);
  ASSERT_TRUE(b.load_state(r).ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(b.injected(), a.injected());
  EXPECT_EQ(b.detected(), a.detected());
  EXPECT_EQ(b.repaired(), a.repaired());
  EXPECT_EQ(b.due(19), a.due(19));
  EXPECT_EQ(b.due(30), a.due(30));
}

TEST(FaultExperimentTest, MetadataFaultsLeaveLifetimeBitIdentical) {
  // The headline robustness contract: injected flips followed by scrubs
  // keep the simulated trajectory exactly on the fault-free path.
  ExperimentConfig c = scaled_stochastic_config(512, 32, 300.0);
  c.spare_scheme = "maxwe";
  c.attack = "uaa";
  const LifetimeResult clean = run_experiment(c);
  c.fault.metadata.flip_interval = 500;
  const LifetimeResult faulted = run_experiment(c);
  EXPECT_DOUBLE_EQ(faulted.user_writes, clean.user_writes);
  EXPECT_EQ(faulted.line_deaths, clean.line_deaths);
  EXPECT_DOUBLE_EQ(faulted.normalized, clean.normalized);
  EXPECT_EQ(faulted.failure_reason, clean.failure_reason);
}

TEST(FaultExperimentTest, DeviceFaultsShortenButDoNotBreakTheRun) {
  ExperimentConfig c = scaled_stochastic_config(512, 32, 300.0);
  c.spare_scheme = "maxwe";
  const LifetimeResult clean = run_experiment(c);
  c.fault.device.stuck_at_lines = 8;
  c.fault.device.early_death_lines = 8;
  c.fault.device.outlier_regions = 2;
  const LifetimeResult faulted = run_experiment(c);
  EXPECT_TRUE(faulted.failed);
  EXPECT_GT(faulted.normalized, 0.0);
  // The faulted device holds strictly less endurance than the clean one.
  EXPECT_LT(faulted.user_writes, clean.user_writes);
}

TEST(FaultExperimentTest, MetadataFaultsRequireMaxWe) {
  ExperimentConfig c = scaled_stochastic_config(512, 32, 300.0);
  c.spare_scheme = "ps";
  c.fault.metadata.flip_interval = 100;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

}  // namespace
}  // namespace nvmsec
