#include "nvm/endurance_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace nvmsec {
namespace {

TEST(EnduranceModelParamsTest, Validation) {
  EnduranceModelParams p;
  EXPECT_NO_THROW(p.validate());

  p.current_mean_ma = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};

  p.current_stddev_ma = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};

  p.truncate_sigma = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};

  // Truncation window must keep the current positive.
  p.current_stddev_ma = 0.2;
  p.truncate_sigma = 3.0;  // 0.3 - 0.6 < 0
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};

  p.endurance_exponent = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};

  p.endurance_at_mean = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(EnduranceModelTest, EnduranceAtMeanCurrent) {
  const EnduranceModel m;
  EXPECT_DOUBLE_EQ(m.endurance_for_current(0.3), 1e8);
}

TEST(EnduranceModelTest, PowerLawIsDecreasing) {
  const EnduranceModel m;
  // Higher programming current -> lower endurance (weaker cell).
  EXPECT_LT(m.endurance_for_current(0.4), m.endurance_for_current(0.3));
  EXPECT_GT(m.endurance_for_current(0.2), m.endurance_for_current(0.3));
}

TEST(EnduranceModelTest, PowerLawExponentExact) {
  EnduranceModelParams p;
  p.endurance_exponent = 6.0;
  const EnduranceModel m(p);
  // Doubling the current divides endurance by 2^6.
  EXPECT_NEAR(m.endurance_for_current(0.6),
              m.endurance_for_current(0.3) / 64.0, 1.0);
}

TEST(EnduranceModelTest, CurrentEnduranceRoundTrip) {
  const EnduranceModel m;
  for (double i : {0.2, 0.25, 0.3, 0.35, 0.4}) {
    EXPECT_NEAR(m.current_for_endurance(m.endurance_for_current(i)), i, 1e-12);
  }
}

TEST(EnduranceModelTest, InvalidQueriesThrow) {
  const EnduranceModel m;
  EXPECT_THROW(m.endurance_for_current(0.0), std::invalid_argument);
  EXPECT_THROW(m.endurance_for_current(-1.0), std::invalid_argument);
  EXPECT_THROW(m.current_for_endurance(0.0), std::invalid_argument);
}

TEST(EnduranceModelTest, SampledCurrentsRespectTruncation) {
  const EnduranceModel m;
  Rng rng(1);
  const auto& p = m.params();
  for (int i = 0; i < 20000; ++i) {
    const double c = m.sample_current(rng);
    EXPECT_GE(c, p.current_mean_ma - p.truncate_sigma * p.current_stddev_ma);
    EXPECT_LE(c, p.current_mean_ma + p.truncate_sigma * p.current_stddev_ma);
  }
}

TEST(EnduranceModelTest, SampledCurrentMomentsMatch) {
  const EnduranceModel m;
  Rng rng(2);
  double sum = 0, sum_sq = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double c = m.sample_current(rng);
    sum += c;
    sum_sq += c * c;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 0.3, 0.001);
  EXPECT_NEAR(std::sqrt(sum_sq / kDraws - mean * mean), 0.033, 0.001);
}

TEST(EnduranceModelTest, RegionEndurancesAllPositive) {
  const EnduranceModel m;
  Rng rng(3);
  const auto es = m.sample_region_endurances(2048, rng);
  ASSERT_EQ(es.size(), 2048u);
  for (double e : es) EXPECT_GT(e, 0.0);
}

TEST(EnduranceModelTest, Paper56xClaimAtExponent6) {
  // §2.1: 2 GB PCM, 512 domains, mu=0.3, sigma=0.033 -> strongest domain is
  // 56x the weakest. The expected extreme z for 512 draws is ~2.88; with
  // E ~ I^-6 the analytic ratio is ~51x — the paper's 56x within sampling
  // noise. (The printed formula's I^-12 would give ~2600x.)
  EnduranceModelParams p;
  p.endurance_exponent = 6.0;
  const EnduranceModel m(p);
  const double z = EnduranceModel::expected_extreme_z(512);
  EXPECT_NEAR(z, 3.0, 0.1);
  const double ratio = m.extreme_ratio(z);
  EXPECT_GT(ratio, 40.0);
  EXPECT_LT(ratio, 80.0);
}

TEST(EnduranceModelTest, EmpiricalExtremeRatioMatchesAnalytic) {
  EnduranceModelParams p;
  p.endurance_exponent = 6.0;
  const EnduranceModel m(p);
  Rng rng(4);
  double acc = 0;
  constexpr int kReps = 20;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto es = m.sample_region_endurances(512, rng);
    acc += *std::max_element(es.begin(), es.end()) /
           *std::min_element(es.begin(), es.end());
  }
  const double mean_ratio = acc / kReps;
  // Heavily right-skewed statistic; just bracket it around the 56x claim.
  EXPECT_GT(mean_ratio, 25.0);
  EXPECT_LT(mean_ratio, 130.0);
}

TEST(ExpectedExtremeZTest, MonotoneInN) {
  EXPECT_EQ(EnduranceModel::expected_extreme_z(1), 0.0);
  double prev = 0.0;
  for (std::uint64_t n : {8ULL, 64ULL, 512ULL, 2048ULL, 1ULL << 22}) {
    const double z = EnduranceModel::expected_extreme_z(n);
    EXPECT_GT(z, prev);
    prev = z;
  }
  // ~3.4 sigma for 2048 draws, ~5.2 for 4M draws (Blom's approximation).
  EXPECT_NEAR(EnduranceModel::expected_extreme_z(2048), 3.4, 0.1);
  EXPECT_NEAR(EnduranceModel::expected_extreme_z(1ULL << 22), 5.2, 0.15);
}

}  // namespace
}  // namespace nvmsec
