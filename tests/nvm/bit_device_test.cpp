#include "nvm/bit_device.h"

#include <gtest/gtest.h>

#include <memory>

#include "reduction/payload.h"

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> tiny_map(Endurance e = 100.0) {
  return std::make_shared<EnduranceMap>(
      DeviceGeometry::scaled(8, 2), std::vector<Endurance>{e, e});
}

TEST(BitDeviceTest, ConstructionValidation) {
  Rng rng(1);
  EXPECT_THROW(BitDevice(nullptr, {}, rng), std::invalid_argument);
  BitDeviceParams bad;
  bad.cell_sigma = -0.1;
  EXPECT_THROW(BitDevice(tiny_map(), bad, rng), std::invalid_argument);
}

TEST(BitDeviceTest, FullScaleDeviceRejected) {
  Rng rng(1);
  auto big = std::make_shared<EnduranceMap>(
      DeviceGeometry::paper_1gb(), std::vector<Endurance>(2048, 1e8));
  EXPECT_THROW(BitDevice(big, {}, rng), std::invalid_argument);
}

TEST(BitDeviceTest, ReferenceLifetimeMatchesLineBudgets) {
  Rng rng(2);
  BitDevice d(tiny_map(250.0), {}, rng);
  EXPECT_DOUBLE_EQ(d.reference_lifetime(), 8 * 250.0);
}

TEST(BitDeviceTest, FullWriteStressKillsNearLineEndurance) {
  Rng rng(3);
  BitDeviceParams params;
  params.cell_sigma = 0.05;
  BitDevice d(tiny_map(200.0), params, rng);
  auto codec = make_full_write_codec();
  auto payload = make_random_payload();
  const PhysLineAddr line{0};
  WriteCount writes = 0;
  while (d.write(line, payload->next(rng, LogicalLineAddr{0}), *codec) == BitWriteOutcome::kOk) {
    ++writes;
  }
  // Weakest of 520 cells at sigma 0.05 fails at ~0.85x the mean.
  EXPECT_GT(writes, 120u);
  EXPECT_LT(writes, 210u);
  EXPECT_TRUE(d.is_worn_out(line));
  EXPECT_EQ(d.worn_out_count(), 1u);
  EXPECT_THROW(d.write(line, payload->next(rng, LogicalLineAddr{0}), *codec), std::logic_error);
}

TEST(BitDeviceTest, ConstantDataNeverWearsDifferentialWrite) {
  Rng rng(4);
  BitDevice d(tiny_map(50.0), {}, rng);
  auto codec = make_differential_write_codec();
  const LineData data = LineData::filled(0xABCD);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(d.write(PhysLineAddr{1}, data, *codec), BitWriteOutcome::kOk);
  }
  EXPECT_EQ(d.writes_to(PhysLineAddr{1}), 500u);
  // After the first write nothing flips, so only 16 set bits x 8 words were
  // ever programmed.
  EXPECT_LT(d.total_cells_programmed(), 520u);
}

TEST(BitDeviceTest, EcpEntriesExtendLineLifetime) {
  auto run_with_ecp = [](std::uint32_t entries) {
    Rng rng(5);
    BitDeviceParams params;
    params.cell_sigma = 0.2;
    params.ecp_entries = entries;
    BitDevice d(tiny_map(300.0), params, rng);
    auto codec = make_full_write_codec();
    auto payload = make_random_payload();
    WriteCount writes = 0;
    while (d.write(PhysLineAddr{0}, payload->next(rng, LogicalLineAddr{0}), *codec) ==
           BitWriteOutcome::kOk) {
      ++writes;
    }
    return std::pair{writes, d.ecp_used(PhysLineAddr{0})};
  };
  const auto [w0, used0] = run_with_ecp(0);
  const auto [w6, used6] = run_with_ecp(6);
  EXPECT_GT(w6, w0);
  EXPECT_EQ(used0, 0u);
  EXPECT_EQ(used6, 6u);
}

TEST(BitDeviceTest, OutOfRangeAccessesThrow) {
  Rng rng(6);
  BitDevice d(tiny_map(), {}, rng);
  auto codec = make_full_write_codec();
  EXPECT_THROW(d.write(PhysLineAddr{8}, LineData{}, *codec),
               std::out_of_range);
  EXPECT_THROW(d.is_worn_out(PhysLineAddr{8}), std::out_of_range);
  EXPECT_THROW(d.writes_to(PhysLineAddr{8}), std::out_of_range);
  EXPECT_THROW(d.ecp_used(PhysLineAddr{8}), std::out_of_range);
}

}  // namespace
}  // namespace nvmsec
