#include "nvm/geometry.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

TEST(GeometryTest, Paper1GbConfiguration) {
  const DeviceGeometry g = DeviceGeometry::paper_1gb();
  EXPECT_EQ(g.total_bytes(), 1ULL << 30);
  EXPECT_EQ(g.line_bytes(), 256u);
  EXPECT_EQ(g.num_lines(), (1ULL << 30) / 256);  // 4,194,304
  EXPECT_EQ(g.num_regions(), 2048u);
  EXPECT_EQ(g.lines_per_region(), 2048u);
}

TEST(GeometryTest, ScaledConfiguration) {
  const DeviceGeometry g = DeviceGeometry::scaled(4096, 64);
  EXPECT_EQ(g.num_lines(), 4096u);
  EXPECT_EQ(g.num_regions(), 64u);
  EXPECT_EQ(g.lines_per_region(), 64u);
}

TEST(GeometryTest, InvalidConfigurations) {
  EXPECT_THROW(DeviceGeometry(1024, 0, 4), std::invalid_argument);
  EXPECT_THROW(DeviceGeometry(1024, 256, 0), std::invalid_argument);
  EXPECT_THROW(DeviceGeometry(1000, 256, 2), std::invalid_argument);  // bytes
  EXPECT_THROW(DeviceGeometry(1024, 256, 3), std::invalid_argument);  // lines
}

TEST(GeometryTest, RegionAndOffsetRoundTrip) {
  const DeviceGeometry g = DeviceGeometry::scaled(256, 16);  // 16 lines/region
  for (std::uint64_t l = 0; l < g.num_lines(); ++l) {
    const PhysLineAddr line{l};
    const RegionId r = g.region_of(line);
    const LineInRegion off = g.offset_in_region(line);
    EXPECT_EQ(r.value(), l / 16);
    EXPECT_EQ(off.value(), l % 16);
    EXPECT_EQ(g.line_at(r, off), line);
  }
}

TEST(GeometryTest, OutOfRangeAccessesThrow) {
  const DeviceGeometry g = DeviceGeometry::scaled(64, 4);
  EXPECT_THROW(g.region_of(PhysLineAddr{64}), std::out_of_range);
  EXPECT_THROW(g.offset_in_region(PhysLineAddr{1000}), std::out_of_range);
  EXPECT_THROW(g.line_at(RegionId{4}, LineInRegion{0}), std::out_of_range);
  EXPECT_THROW(g.line_at(RegionId{0}, LineInRegion{16}), std::out_of_range);
}

TEST(GeometryTest, ContainsBoundary) {
  const DeviceGeometry g = DeviceGeometry::scaled(64, 4);
  EXPECT_TRUE(g.contains(PhysLineAddr{0}));
  EXPECT_TRUE(g.contains(PhysLineAddr{63}));
  EXPECT_FALSE(g.contains(PhysLineAddr{64}));
}

TEST(GeometryTest, EqualityComparison) {
  EXPECT_EQ(DeviceGeometry::scaled(64, 4), DeviceGeometry::scaled(64, 4));
  EXPECT_NE(DeviceGeometry::scaled(64, 4), DeviceGeometry::scaled(64, 8));
}

}  // namespace
}  // namespace nvmsec
