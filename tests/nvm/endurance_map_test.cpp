#include "nvm/endurance_map.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace nvmsec {
namespace {

DeviceGeometry small_geom() { return DeviceGeometry::scaled(64, 8); }

TEST(EnduranceMapTest, ExplicitConstruction) {
  std::vector<Endurance> es{1, 2, 3, 4, 5, 6, 7, 8};
  const EnduranceMap map(small_geom(), es);
  for (std::uint64_t r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(map.region_endurance(RegionId{r}), es[r]);
  }
}

TEST(EnduranceMapTest, SizeMismatchThrows) {
  EXPECT_THROW(EnduranceMap(small_geom(), std::vector<Endurance>{1, 2}),
               std::invalid_argument);
}

TEST(EnduranceMapTest, NonPositiveEnduranceThrows) {
  std::vector<Endurance> es(8, 5.0);
  es[3] = 0.0;
  EXPECT_THROW(EnduranceMap(small_geom(), es), std::invalid_argument);
  es[3] = -1.0;
  EXPECT_THROW(EnduranceMap(small_geom(), es), std::invalid_argument);
}

TEST(EnduranceMapTest, LineEnduranceEqualsRegionEndurance) {
  std::vector<Endurance> es{1, 2, 3, 4, 5, 6, 7, 8};
  const EnduranceMap map(small_geom(), es);
  // 8 lines per region.
  EXPECT_DOUBLE_EQ(map.line_endurance(PhysLineAddr{0}), 1.0);
  EXPECT_DOUBLE_EQ(map.line_endurance(PhysLineAddr{7}), 1.0);
  EXPECT_DOUBLE_EQ(map.line_endurance(PhysLineAddr{8}), 2.0);
  EXPECT_DOUBLE_EQ(map.line_endurance(PhysLineAddr{63}), 8.0);
  EXPECT_THROW(map.line_endurance(PhysLineAddr{64}), std::out_of_range);
}

TEST(EnduranceMapTest, IdealLifetimeIsSumOverLines) {
  std::vector<Endurance> es{1, 2, 3, 4, 5, 6, 7, 8};
  const EnduranceMap map(small_geom(), es);
  EXPECT_DOUBLE_EQ(map.ideal_lifetime(), 8.0 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

TEST(EnduranceMapTest, MinMax) {
  std::vector<Endurance> es{5, 2, 9, 4, 5, 6, 7, 8};
  const EnduranceMap map(small_geom(), es);
  EXPECT_DOUBLE_EQ(map.min_line_endurance(), 2.0);
  EXPECT_DOUBLE_EQ(map.max_line_endurance(), 9.0);
}

TEST(EnduranceMapTest, RegionsWeakestFirstSorted) {
  std::vector<Endurance> es{5, 2, 9, 4, 5, 6, 7, 8};
  const EnduranceMap map(small_geom(), es);
  const auto order = map.regions_weakest_first();
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order[0].value(), 1u);  // endurance 2
  EXPECT_EQ(order[1].value(), 3u);  // endurance 4
  // Ties (5, 5 at regions 0 and 4) broken by region id.
  EXPECT_EQ(order[2].value(), 0u);
  EXPECT_EQ(order[3].value(), 4u);
  EXPECT_EQ(order.back().value(), 2u);  // endurance 9
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(map.region_endurance(order[i - 1]),
              map.region_endurance(order[i]));
  }
}

TEST(EnduranceMapTest, LinesWeakestFirstSorted) {
  std::vector<Endurance> es{5, 2, 9, 4, 5, 6, 7, 8};
  const EnduranceMap map(small_geom(), es);
  const auto order = map.lines_weakest_first();
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(map.line_endurance(order[i - 1]), map.line_endurance(order[i]));
  }
  // The 8 weakest lines are exactly region 1's lines, in address order.
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(order[k].value(), 8 + k);
  }
}

TEST(EnduranceMapTest, LinearRampUnshuffled) {
  Rng rng(1);
  const auto map = EnduranceMap::linear(small_geom(), 10.0, 80.0,
                                        /*shuffled=*/false, rng);
  EXPECT_DOUBLE_EQ(map.region_endurance(RegionId{0}), 10.0);
  EXPECT_DOUBLE_EQ(map.region_endurance(RegionId{7}), 80.0);
  EXPECT_DOUBLE_EQ(map.region_endurance(RegionId{1}), 20.0);
}

TEST(EnduranceMapTest, LinearRampShuffledPreservesMultiset) {
  Rng rng(1);
  const auto plain = EnduranceMap::linear(small_geom(), 10.0, 80.0, false, rng);
  const auto shuffled =
      EnduranceMap::linear(small_geom(), 10.0, 80.0, true, rng);
  std::vector<double> a, b;
  for (std::uint64_t r = 0; r < 8; ++r) {
    a.push_back(plain.region_endurance(RegionId{r}));
    b.push_back(shuffled.region_endurance(RegionId{r}));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(EnduranceMapTest, LinearValidation) {
  Rng rng(1);
  EXPECT_THROW(EnduranceMap::linear(small_geom(), 0.0, 10.0, false, rng),
               std::invalid_argument);
  EXPECT_THROW(EnduranceMap::linear(small_geom(), 10.0, 5.0, false, rng),
               std::invalid_argument);
}

TEST(EnduranceMapTest, UniformMap) {
  const auto map = EnduranceMap::uniform(small_geom(), 42.0);
  EXPECT_DOUBLE_EQ(map.min_line_endurance(), 42.0);
  EXPECT_DOUBLE_EQ(map.max_line_endurance(), 42.0);
  EXPECT_DOUBLE_EQ(map.ideal_lifetime(), 64 * 42.0);
  EXPECT_THROW(EnduranceMap::uniform(small_geom(), 0.0), std::invalid_argument);
}

TEST(EnduranceMapTest, FromModelHasRightShape) {
  Rng rng(7);
  const EnduranceModel model;
  const auto map = EnduranceMap::from_model(small_geom(), model, rng);
  EXPECT_GT(map.min_line_endurance(), 0.0);
  EXPECT_GT(map.max_line_endurance(), map.min_line_endurance());
}

TEST(EnduranceMapTest, LineJitterSpreadsWithinRegion) {
  Rng rng(9);
  auto map = EnduranceMap::uniform(small_geom(), 100.0);
  EXPECT_FALSE(map.has_line_jitter());
  map.apply_line_jitter(0.3, rng);
  EXPECT_TRUE(map.has_line_jitter());
  // Lines of one region now differ from each other.
  bool differs = false;
  for (std::uint64_t l = 1; l < 8; ++l) {
    if (map.line_endurance(PhysLineAddr{l}) !=
        map.line_endurance(PhysLineAddr{0})) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
  // Ideal lifetime was recomputed from per-line values.
  double sum = 0;
  for (std::uint64_t l = 0; l < 64; ++l) {
    sum += map.line_endurance(PhysLineAddr{l});
  }
  EXPECT_NEAR(map.ideal_lifetime(), sum, 1e-9);
}

TEST(EnduranceMapTest, ZeroJitterKeepsValues) {
  Rng rng(9);
  auto map = EnduranceMap::uniform(small_geom(), 100.0);
  map.apply_line_jitter(0.0, rng);
  for (std::uint64_t l = 0; l < 64; ++l) {
    EXPECT_DOUBLE_EQ(map.line_endurance(PhysLineAddr{l}), 100.0);
  }
  EXPECT_THROW(map.apply_line_jitter(-0.1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace nvmsec
