#include "nvm/endurance_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nvmsec {
namespace {

EnduranceMap sample_map() {
  return EnduranceMap(DeviceGeometry::scaled(64, 8),
                      std::vector<Endurance>{1.5, 2.25, 3e8, 4.125, 5, 6, 7,
                                             8.000000001});
}

TEST(EnduranceIoTest, RoundTripPreservesEverything) {
  const EnduranceMap original = sample_map();
  std::stringstream buffer;
  write_endurance_csv(original, buffer);
  const EnduranceMap loaded = read_endurance_csv(buffer).take();
  EXPECT_EQ(loaded.geometry(), original.geometry());
  for (std::uint64_t r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(loaded.region_endurance(RegionId{r}),
                     original.region_endurance(RegionId{r}))
        << "region " << r;
  }
  EXPECT_DOUBLE_EQ(loaded.ideal_lifetime(), original.ideal_lifetime());
}

TEST(EnduranceIoTest, RoundTripOfModelDrawnMap) {
  Rng rng(9);
  const EnduranceModel model;
  const EnduranceMap original =
      EnduranceMap::from_model(DeviceGeometry::scaled(2048, 128), model, rng);
  std::stringstream buffer;
  write_endurance_csv(original, buffer);
  const EnduranceMap loaded = read_endurance_csv(buffer).take();
  EXPECT_DOUBLE_EQ(loaded.min_line_endurance(), original.min_line_endurance());
  EXPECT_DOUBLE_EQ(loaded.max_line_endurance(), original.max_line_endurance());
}

TEST(EnduranceIoTest, RejectsBadMagic) {
  std::stringstream in("not a map\n");
  const Result<EnduranceMap> result = read_endurance_csv(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("expected header"),
            std::string::npos);
}

TEST(EnduranceIoTest, RejectsTruncatedInput) {
  const EnduranceMap original = sample_map();
  std::stringstream buffer;
  write_endurance_csv(original, buffer);
  std::string text = buffer.str();
  // Cut cleanly at a row boundary: the reader sees complete lines, then an
  // early end of input where data rows should continue.
  const std::size_t cut = text.find("\n3,");
  ASSERT_NE(cut, std::string::npos);
  text.resize(cut + 1);
  std::stringstream in(text);
  const Result<EnduranceMap> result = read_endurance_csv(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(result.status().message().find("unexpected end of input"),
            std::string::npos);

  // A cut that tears a row mid-line is corruption instead.
  std::string torn = buffer.str();
  torn.resize(cut + 3);
  std::stringstream torn_in(torn);
  const Result<EnduranceMap> torn_result = read_endurance_csv(torn_in);
  ASSERT_FALSE(torn_result.ok());
  EXPECT_EQ(torn_result.status().code(), StatusCode::kCorruption);
}

TEST(EnduranceIoTest, RejectsMalformedRows) {
  std::stringstream in(
      "# maxwe-endurance-map v1\n"
      "total_bytes,line_bytes,num_regions\n"
      "16384,256,8\n"
      "region,endurance\n"
      "0;1.0\n");  // semicolon, not comma
  const Result<EnduranceMap> result = read_endurance_csv(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  // The message names the offending line so the file can be fixed.
  EXPECT_NE(result.status().message().find("line 5"), std::string::npos);
}

TEST(EnduranceIoTest, RejectsDuplicateRegions) {
  std::stringstream in(
      "# maxwe-endurance-map v1\n"
      "total_bytes,line_bytes,num_regions\n"
      "1024,256,2\n"
      "region,endurance\n"
      "0,1.0\n"
      "0,2.0\n");
  const Result<EnduranceMap> result = read_endurance_csv(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(EnduranceIoTest, RejectsOutOfRangeRegion) {
  std::stringstream in(
      "# maxwe-endurance-map v1\n"
      "total_bytes,line_bytes,num_regions\n"
      "1024,256,2\n"
      "region,endurance\n"
      "0,1.0\n"
      "7,2.0\n");
  const Result<EnduranceMap> result = read_endurance_csv(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(EnduranceIoTest, ConstructorRejectionsBecomeCorruption) {
  std::stringstream in(
      "# maxwe-endurance-map v1\n"
      "total_bytes,line_bytes,num_regions\n"
      "1024,256,2\n"
      "region,endurance\n"
      "0,1.0\n"
      "1,-2.0\n");  // negative endurance
  const Result<EnduranceMap> result = read_endurance_csv(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(EnduranceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/endurance_io_test.csv";
  const EnduranceMap original = sample_map();
  ASSERT_TRUE(save_endurance_csv(original, path).ok());
  const EnduranceMap loaded = load_endurance_csv(path).take();
  EXPECT_EQ(loaded.geometry(), original.geometry());
  const Result<EnduranceMap> missing =
      load_endurance_csv(path + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(EnduranceIoTest, SaveToUnwritablePathReportsIoError) {
  const Status status =
      save_endurance_csv(sample_map(), "/nonexistent-dir/map.csv");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("/nonexistent-dir/map.csv"),
            std::string::npos);
}

}  // namespace
}  // namespace nvmsec
