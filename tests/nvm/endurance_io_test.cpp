#include "nvm/endurance_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nvmsec {
namespace {

EnduranceMap sample_map() {
  return EnduranceMap(DeviceGeometry::scaled(64, 8),
                      std::vector<Endurance>{1.5, 2.25, 3e8, 4.125, 5, 6, 7,
                                             8.000000001});
}

TEST(EnduranceIoTest, RoundTripPreservesEverything) {
  const EnduranceMap original = sample_map();
  std::stringstream buffer;
  write_endurance_csv(original, buffer);
  const EnduranceMap loaded = read_endurance_csv(buffer);
  EXPECT_EQ(loaded.geometry(), original.geometry());
  for (std::uint64_t r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(loaded.region_endurance(RegionId{r}),
                     original.region_endurance(RegionId{r}))
        << "region " << r;
  }
  EXPECT_DOUBLE_EQ(loaded.ideal_lifetime(), original.ideal_lifetime());
}

TEST(EnduranceIoTest, RoundTripOfModelDrawnMap) {
  Rng rng(9);
  const EnduranceModel model;
  const EnduranceMap original =
      EnduranceMap::from_model(DeviceGeometry::scaled(2048, 128), model, rng);
  std::stringstream buffer;
  write_endurance_csv(original, buffer);
  const EnduranceMap loaded = read_endurance_csv(buffer);
  EXPECT_DOUBLE_EQ(loaded.min_line_endurance(), original.min_line_endurance());
  EXPECT_DOUBLE_EQ(loaded.max_line_endurance(), original.max_line_endurance());
}

TEST(EnduranceIoTest, RejectsBadMagic) {
  std::stringstream in("not a map\n");
  EXPECT_THROW(read_endurance_csv(in), std::runtime_error);
}

TEST(EnduranceIoTest, RejectsTruncatedInput) {
  const EnduranceMap original = sample_map();
  std::stringstream buffer;
  write_endurance_csv(original, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream in(text);
  EXPECT_THROW(read_endurance_csv(in), std::runtime_error);
}

TEST(EnduranceIoTest, RejectsMalformedRows) {
  std::stringstream in(
      "# maxwe-endurance-map v1\n"
      "total_bytes,line_bytes,num_regions\n"
      "16384,256,8\n"
      "region,endurance\n"
      "0;1.0\n");  // semicolon, not comma
  EXPECT_THROW(read_endurance_csv(in), std::runtime_error);
}

TEST(EnduranceIoTest, RejectsDuplicateRegions) {
  std::stringstream in(
      "# maxwe-endurance-map v1\n"
      "total_bytes,line_bytes,num_regions\n"
      "1024,256,2\n"
      "region,endurance\n"
      "0,1.0\n"
      "0,2.0\n");
  EXPECT_THROW(read_endurance_csv(in), std::runtime_error);
}

TEST(EnduranceIoTest, RejectsOutOfRangeRegion) {
  std::stringstream in(
      "# maxwe-endurance-map v1\n"
      "total_bytes,line_bytes,num_regions\n"
      "1024,256,2\n"
      "region,endurance\n"
      "0,1.0\n"
      "7,2.0\n");
  EXPECT_THROW(read_endurance_csv(in), std::runtime_error);
}

TEST(EnduranceIoTest, InvalidValuesSurfaceFromConstructors) {
  std::stringstream in(
      "# maxwe-endurance-map v1\n"
      "total_bytes,line_bytes,num_regions\n"
      "1024,256,2\n"
      "region,endurance\n"
      "0,1.0\n"
      "1,-2.0\n");  // negative endurance
  EXPECT_THROW(read_endurance_csv(in), std::invalid_argument);
}

TEST(EnduranceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/endurance_io_test.csv";
  const EnduranceMap original = sample_map();
  save_endurance_csv(original, path);
  const EnduranceMap loaded = load_endurance_csv(path);
  EXPECT_EQ(loaded.geometry(), original.geometry());
  EXPECT_THROW(load_endurance_csv(path + ".does-not-exist"),
               std::runtime_error);
}

}  // namespace
}  // namespace nvmsec
