#include "nvm/device.h"

#include <gtest/gtest.h>

#include <memory>

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> tiny_map() {
  // 4 regions x 4 lines, endurances 2/3/4/5 per region.
  return std::make_shared<EnduranceMap>(DeviceGeometry::scaled(16, 4),
                                        std::vector<Endurance>{2, 3, 4, 5});
}

TEST(DeviceTest, NullMapThrows) {
  EXPECT_THROW(Device(nullptr), std::invalid_argument);
}

TEST(DeviceTest, BudgetsMatchEndurance) {
  Device d(tiny_map());
  EXPECT_EQ(d.write_budget(PhysLineAddr{0}), 2u);
  EXPECT_EQ(d.write_budget(PhysLineAddr{4}), 3u);
  EXPECT_EQ(d.write_budget(PhysLineAddr{15}), 5u);
  EXPECT_DOUBLE_EQ(d.total_budget(), 4 * (2 + 3 + 4 + 5));
}

TEST(DeviceTest, FractionalEnduranceRoundsAndClampsToOne) {
  auto map = std::make_shared<EnduranceMap>(
      DeviceGeometry::scaled(8, 2), std::vector<Endurance>{0.2, 2.6});
  Device d(map);
  EXPECT_EQ(d.write_budget(PhysLineAddr{0}), 1u);  // clamped up to 1
  EXPECT_EQ(d.write_budget(PhysLineAddr{4}), 3u);  // rounded
}

TEST(DeviceTest, WearOutOnExactlyLastWrite) {
  Device d(tiny_map());
  const PhysLineAddr line{0};  // budget 2
  EXPECT_EQ(d.write(line), WriteOutcome::kOk);
  EXPECT_EQ(d.remaining(line), 1u);
  EXPECT_FALSE(d.is_worn_out(line));
  EXPECT_EQ(d.write(line), WriteOutcome::kWornOut);
  EXPECT_TRUE(d.is_worn_out(line));
  EXPECT_EQ(d.remaining(line), 0u);
  EXPECT_EQ(d.worn_out_count(), 1u);
}

TEST(DeviceTest, WritingDeadLineIsLogicError) {
  Device d(tiny_map());
  const PhysLineAddr line{0};
  d.write(line);
  d.write(line);
  EXPECT_THROW(d.write(line), std::logic_error);
}

TEST(DeviceTest, OutOfRangeThrows) {
  Device d(tiny_map());
  EXPECT_THROW(d.write(PhysLineAddr{16}), std::out_of_range);
  EXPECT_THROW(d.remaining(PhysLineAddr{16}), std::out_of_range);
  EXPECT_THROW(d.write_budget(PhysLineAddr{16}), std::out_of_range);
  EXPECT_THROW(d.writes_to(PhysLineAddr{99}), std::out_of_range);
}

TEST(DeviceTest, CountersTrackWrites) {
  Device d(tiny_map());
  d.write(PhysLineAddr{8});
  d.write(PhysLineAddr{8});
  d.write(PhysLineAddr{12});
  EXPECT_EQ(d.total_writes(), 3u);
  EXPECT_EQ(d.writes_to(PhysLineAddr{8}), 2u);
  EXPECT_EQ(d.writes_to(PhysLineAddr{12}), 1u);
  EXPECT_EQ(d.writes_to(PhysLineAddr{0}), 0u);
}

TEST(DeviceTest, ResetRestoresFactoryState) {
  Device d(tiny_map());
  d.write(PhysLineAddr{0});
  d.write(PhysLineAddr{0});
  d.reset();
  EXPECT_EQ(d.total_writes(), 0u);
  EXPECT_EQ(d.worn_out_count(), 0u);
  EXPECT_FALSE(d.is_worn_out(PhysLineAddr{0}));
  EXPECT_EQ(d.remaining(PhysLineAddr{0}), 2u);
  // And the line works again.
  EXPECT_EQ(d.write(PhysLineAddr{0}), WriteOutcome::kOk);
}

TEST(DeviceTest, WriteManyAbsorbsUpToTheBudget) {
  Device d(tiny_map());
  const PhysLineAddr line{12};  // budget 5
  const BulkWriteResult r = d.write_many(line, 3);
  EXPECT_EQ(r.absorbed, 3u);
  EXPECT_FALSE(r.wore_out);
  EXPECT_EQ(d.remaining(line), 2u);
  EXPECT_EQ(d.total_writes(), 3u);
  EXPECT_EQ(d.writes_to(line), 3u);
}

TEST(DeviceTest, WriteManySplitsAtWearOut) {
  Device d(tiny_map());
  const PhysLineAddr line{4};  // budget 3
  // Ask for more than the line can take: only the remainder is absorbed
  // and the line dies on its last absorbed write.
  const BulkWriteResult r = d.write_many(line, 10);
  EXPECT_EQ(r.absorbed, 3u);
  EXPECT_TRUE(r.wore_out);
  EXPECT_TRUE(d.is_worn_out(line));
  EXPECT_EQ(d.total_writes(), 3u);
  EXPECT_EQ(d.worn_out_count(), 1u);
}

TEST(DeviceTest, WriteManyExactBudgetWearsOut) {
  Device d(tiny_map());
  const PhysLineAddr line{0};  // budget 2
  const BulkWriteResult r = d.write_many(line, 2);
  EXPECT_EQ(r.absorbed, 2u);
  EXPECT_TRUE(r.wore_out);
  EXPECT_EQ(d.worn_out_count(), 1u);
}

TEST(DeviceTest, WriteManyMatchesSingleWrites) {
  Device a(tiny_map());
  Device b(tiny_map());
  const PhysLineAddr line{8};  // budget 4
  const BulkWriteResult bulk = a.write_many(line, 4);
  WriteOutcome last = WriteOutcome::kOk;
  for (int i = 0; i < 4; ++i) last = b.write(line);
  EXPECT_EQ(bulk.absorbed, 4u);
  EXPECT_EQ(bulk.wore_out, last == WriteOutcome::kWornOut);
  EXPECT_EQ(a.total_writes(), b.total_writes());
  EXPECT_EQ(a.remaining(line), b.remaining(line));
  EXPECT_EQ(a.worn_out_count(), b.worn_out_count());
}

TEST(DeviceTest, WriteManyValidationMatchesWrite) {
  Device d(tiny_map());
  EXPECT_THROW(d.write_many(PhysLineAddr{16}, 1), std::out_of_range);
  EXPECT_THROW(d.write_many(PhysLineAddr{0}, 0), std::invalid_argument);
  d.write_many(PhysLineAddr{0}, 2);  // wears the line out
  EXPECT_THROW(d.write_many(PhysLineAddr{0}, 1), std::logic_error);
}

TEST(DeviceTest, GeometryAndMapAccessors) {
  auto map = tiny_map();
  Device d(map);
  EXPECT_EQ(d.geometry().num_lines(), 16u);
  EXPECT_EQ(&d.endurance_map(), map.get());
}


TEST(DeviceTest, WriteCountsAbsorbsWholeVector) {
  Device d(tiny_map());
  // Budgets: lines 0-3 have 2, lines 4-7 have 3, 8-11 have 4.
  const std::vector<std::uint64_t> lines{0, 1, 4, 8};
  const std::vector<WriteCount> counts{1, 1, 2, 3};
  const BulkCountsResult res = d.write_counts(lines, counts);
  EXPECT_FALSE(res.wore_out);
  EXPECT_EQ(res.entries_done, 4u);
  EXPECT_EQ(res.absorbed, 7u);
  EXPECT_EQ(d.total_writes(), 7u);
  EXPECT_EQ(d.remaining(PhysLineAddr{0}), 1u);
  EXPECT_EQ(d.remaining(PhysLineAddr{4}), 1u);
  EXPECT_EQ(d.remaining(PhysLineAddr{8}), 1u);
  EXPECT_EQ(d.worn_out_count(), 0u);
}

TEST(DeviceTest, WriteCountsStopsAtFirstWearOutAndClampsTheEntry) {
  Device d(tiny_map());
  // Entry 1 asks for 10 writes against line 1's budget of 2: the device
  // absorbs exactly 2, wears the line out, and never touches entry 2.
  const std::vector<std::uint64_t> lines{0, 1, 4};
  const std::vector<WriteCount> counts{1, 10, 3};
  const BulkCountsResult res = d.write_counts(lines, counts);
  EXPECT_TRUE(res.wore_out);
  EXPECT_EQ(res.entries_done, 1u);
  EXPECT_EQ(res.entry_absorbed, 2u);
  EXPECT_EQ(res.absorbed, 3u);
  EXPECT_EQ(d.total_writes(), 3u);
  EXPECT_TRUE(d.is_worn_out(PhysLineAddr{1}));
  EXPECT_EQ(d.worn_out_count(), 1u);
  EXPECT_EQ(d.remaining(PhysLineAddr{4}), 3u);  // untouched tail
}

TEST(DeviceTest, WriteCountsExactBudgetWearsOut) {
  Device d(tiny_map());
  const std::vector<std::uint64_t> lines{0};
  const std::vector<WriteCount> counts{2};
  const BulkCountsResult res = d.write_counts(lines, counts);
  EXPECT_TRUE(res.wore_out);
  EXPECT_EQ(res.entries_done, 0u);
  EXPECT_EQ(res.entry_absorbed, 2u);
  EXPECT_EQ(res.absorbed, 2u);
  EXPECT_TRUE(d.is_worn_out(PhysLineAddr{0}));
}

TEST(DeviceTest, WriteCountsValidationMatchesWrite) {
  Device d(tiny_map());
  const std::vector<std::uint64_t> ok_line{0};
  const std::vector<WriteCount> two_counts{1, 1};
  EXPECT_THROW(d.write_counts(ok_line, two_counts), std::invalid_argument);
  const std::vector<std::uint64_t> bad_line{16};
  const std::vector<WriteCount> one{1};
  EXPECT_THROW(d.write_counts(bad_line, one), std::out_of_range);
  d.write(PhysLineAddr{0});
  d.write(PhysLineAddr{0});
  EXPECT_THROW(d.write_counts(ok_line, one), std::logic_error);
}

TEST(DeviceTest, WriteCountsMatchesSingleWrites) {
  Device bulk(tiny_map());
  Device single(tiny_map());
  const std::vector<std::uint64_t> lines{2, 5, 9, 13};
  const std::vector<WriteCount> counts{1, 2, 3, 4};
  const BulkCountsResult res = bulk.write_counts(lines, counts);
  EXPECT_FALSE(res.wore_out);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (WriteCount k = 0; k < counts[i]; ++k) {
      EXPECT_EQ(single.write(PhysLineAddr{lines[i]}), WriteOutcome::kOk);
    }
  }
  EXPECT_EQ(bulk.total_writes(), single.total_writes());
  for (const std::uint64_t l : lines) {
    EXPECT_EQ(bulk.remaining(PhysLineAddr{l}), single.remaining(PhysLineAddr{l}));
  }
}

}  // namespace
}  // namespace nvmsec
