#include "nvm/device.h"

#include <gtest/gtest.h>

#include <memory>

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> tiny_map() {
  // 4 regions x 4 lines, endurances 2/3/4/5 per region.
  return std::make_shared<EnduranceMap>(DeviceGeometry::scaled(16, 4),
                                        std::vector<Endurance>{2, 3, 4, 5});
}

TEST(DeviceTest, NullMapThrows) {
  EXPECT_THROW(Device(nullptr), std::invalid_argument);
}

TEST(DeviceTest, BudgetsMatchEndurance) {
  Device d(tiny_map());
  EXPECT_EQ(d.write_budget(PhysLineAddr{0}), 2u);
  EXPECT_EQ(d.write_budget(PhysLineAddr{4}), 3u);
  EXPECT_EQ(d.write_budget(PhysLineAddr{15}), 5u);
  EXPECT_DOUBLE_EQ(d.total_budget(), 4 * (2 + 3 + 4 + 5));
}

TEST(DeviceTest, FractionalEnduranceRoundsAndClampsToOne) {
  auto map = std::make_shared<EnduranceMap>(
      DeviceGeometry::scaled(8, 2), std::vector<Endurance>{0.2, 2.6});
  Device d(map);
  EXPECT_EQ(d.write_budget(PhysLineAddr{0}), 1u);  // clamped up to 1
  EXPECT_EQ(d.write_budget(PhysLineAddr{4}), 3u);  // rounded
}

TEST(DeviceTest, WearOutOnExactlyLastWrite) {
  Device d(tiny_map());
  const PhysLineAddr line{0};  // budget 2
  EXPECT_EQ(d.write(line), WriteOutcome::kOk);
  EXPECT_EQ(d.remaining(line), 1u);
  EXPECT_FALSE(d.is_worn_out(line));
  EXPECT_EQ(d.write(line), WriteOutcome::kWornOut);
  EXPECT_TRUE(d.is_worn_out(line));
  EXPECT_EQ(d.remaining(line), 0u);
  EXPECT_EQ(d.worn_out_count(), 1u);
}

TEST(DeviceTest, WritingDeadLineIsLogicError) {
  Device d(tiny_map());
  const PhysLineAddr line{0};
  d.write(line);
  d.write(line);
  EXPECT_THROW(d.write(line), std::logic_error);
}

TEST(DeviceTest, OutOfRangeThrows) {
  Device d(tiny_map());
  EXPECT_THROW(d.write(PhysLineAddr{16}), std::out_of_range);
  EXPECT_THROW(d.remaining(PhysLineAddr{16}), std::out_of_range);
  EXPECT_THROW(d.write_budget(PhysLineAddr{16}), std::out_of_range);
  EXPECT_THROW(d.writes_to(PhysLineAddr{99}), std::out_of_range);
}

TEST(DeviceTest, CountersTrackWrites) {
  Device d(tiny_map());
  d.write(PhysLineAddr{8});
  d.write(PhysLineAddr{8});
  d.write(PhysLineAddr{12});
  EXPECT_EQ(d.total_writes(), 3u);
  EXPECT_EQ(d.writes_to(PhysLineAddr{8}), 2u);
  EXPECT_EQ(d.writes_to(PhysLineAddr{12}), 1u);
  EXPECT_EQ(d.writes_to(PhysLineAddr{0}), 0u);
}

TEST(DeviceTest, ResetRestoresFactoryState) {
  Device d(tiny_map());
  d.write(PhysLineAddr{0});
  d.write(PhysLineAddr{0});
  d.reset();
  EXPECT_EQ(d.total_writes(), 0u);
  EXPECT_EQ(d.worn_out_count(), 0u);
  EXPECT_FALSE(d.is_worn_out(PhysLineAddr{0}));
  EXPECT_EQ(d.remaining(PhysLineAddr{0}), 2u);
  // And the line works again.
  EXPECT_EQ(d.write(PhysLineAddr{0}), WriteOutcome::kOk);
}

TEST(DeviceTest, GeometryAndMapAccessors) {
  auto map = tiny_map();
  Device d(map);
  EXPECT_EQ(d.geometry().num_lines(), 16u);
  EXPECT_EQ(&d.endurance_map(), map.get());
}

}  // namespace
}  // namespace nvmsec
