// Tests for the baseline spare-line replacement schemes: NoSpare, PCD, and
// Physical Sparing (average and worst-case pools).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "spare/none.h"
#include "spare/pcd.h"
#include "spare/ps.h"
#include "spare/spare_scheme.h"

namespace nvmsec {
namespace {

// 8 regions x 8 lines; region r has endurance 10*(r+1).
std::shared_ptr<const EnduranceMap> ramp_map() {
  std::vector<Endurance> es;
  for (int r = 0; r < 8; ++r) es.push_back(10.0 * (r + 1));
  return std::make_shared<EnduranceMap>(DeviceGeometry::scaled(64, 8), es);
}

TEST(NoSpareTest, IdentityAndImmediateFailure) {
  NoSpare scheme(ramp_map());
  EXPECT_EQ(scheme.working_lines(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(scheme.working_line(i).value(), i);
    EXPECT_EQ(scheme.resolve(i).value(), i);
  }
  EXPECT_FALSE(scheme.on_wear_out(0));
  EXPECT_EQ(scheme.stats().line_deaths, 1u);
  EXPECT_THROW(scheme.resolve(64), std::out_of_range);
  EXPECT_THROW(scheme.on_wear_out(64), std::out_of_range);
}

TEST(PcdTest, ConstructionValidation) {
  Rng rng(1);
  EXPECT_THROW(Pcd(ramp_map(), 64, rng), std::invalid_argument);
  EXPECT_NO_THROW(Pcd(ramp_map(), 0, rng));
}

TEST(PcdTest, RedirectsToSurvivorUntilBudgetExhausted) {
  Rng rng(2);
  Pcd scheme(ramp_map(), /*degradation_budget=*/3, rng);
  EXPECT_EQ(scheme.working_lines(), 64u);
  EXPECT_EQ(scheme.alive_lines(), 64u);

  std::set<std::uint64_t> retired;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const std::uint64_t victim = scheme.resolve(i).value();
    EXPECT_TRUE(scheme.on_wear_out(i));
    retired.insert(victim);
    EXPECT_EQ(scheme.alive_lines(), 64u - retired.size());
    // Redirect target is a different, live line.
    EXPECT_NE(scheme.resolve(i).value(), victim);
  }
  // Fourth death breaks the capacity guarantee.
  EXPECT_FALSE(scheme.on_wear_out(10));
  EXPECT_EQ(scheme.stats().line_deaths, 4u);
}

TEST(PcdTest, LazyRepairForSharedBackings) {
  Rng rng(3);
  Pcd scheme(ramp_map(), 20, rng);
  // Point two addresses at the same backing by wearing out 0's line until
  // it happens to land somewhere; then kill the shared line via address 0
  // and observe address resolution stays live for both.
  ASSERT_TRUE(scheme.on_wear_out(0));
  const std::uint64_t shared = scheme.resolve(0).value();
  // Simulate address `shared` dying through address 0's write path: its own
  // slot is `shared`'s original line.
  ASSERT_TRUE(scheme.on_wear_out(0));  // kills `shared`
  // The line `shared` also backed its own working index; resolving it must
  // lazily re-home rather than return a dead line.
  const std::uint64_t rehomed = scheme.resolve(shared).value();
  EXPECT_NE(rehomed, shared);
}

TEST(PcdTest, StatsReportSparesRemaining) {
  Rng rng(4);
  Pcd scheme(ramp_map(), 5, rng);
  EXPECT_EQ(scheme.stats().spares_remaining, 5u);
  scheme.on_wear_out(0);
  EXPECT_EQ(scheme.stats().spares_remaining, 4u);
  EXPECT_EQ(scheme.stats().replacements, 1u);
}

TEST(PcdTest, ResetRestoresIdentity) {
  Rng rng(5);
  Pcd scheme(ramp_map(), 5, rng);
  scheme.on_wear_out(0);
  scheme.reset();
  EXPECT_EQ(scheme.alive_lines(), 64u);
  EXPECT_EQ(scheme.resolve(0).value(), 0u);
  EXPECT_EQ(scheme.stats().line_deaths, 0u);
}

TEST(PsTest, ConstructionValidation) {
  Rng rng(6);
  EXPECT_THROW(PhysicalSparing(ramp_map(), 0, PsPoolPolicy::kRandom, rng),
               std::invalid_argument);
  EXPECT_THROW(PhysicalSparing(ramp_map(), 64, PsPoolPolicy::kRandom, rng),
               std::invalid_argument);
}

TEST(PsTest, WorkingSetExcludesPool) {
  Rng rng(7);
  PhysicalSparing scheme(ramp_map(), 16, PsPoolPolicy::kRandom, rng);
  EXPECT_EQ(scheme.working_lines(), 48u);
  EXPECT_EQ(scheme.pool_remaining(), 16u);
  std::set<std::uint64_t> working;
  for (std::uint64_t i = 0; i < 48; ++i) {
    working.insert(scheme.working_line(i).value());
  }
  EXPECT_EQ(working.size(), 48u);
}

TEST(PsTest, WorstPolicyPoolIsStrongestLines) {
  Rng rng(8);
  PhysicalSparing scheme(ramp_map(), 16, PsPoolPolicy::kStrongest, rng);
  // Strongest 16 lines are regions 6 and 7 (endurance 70 and 80) — so the
  // working set must exclude exactly lines 48..63.
  EXPECT_EQ(scheme.name(), "ps-worst");
  for (std::uint64_t i = 0; i < scheme.working_lines(); ++i) {
    EXPECT_LT(scheme.working_line(i).value(), 48u);
  }
}

TEST(PsTest, ReplacementConsumesPoolThenFails) {
  Rng rng(9);
  PhysicalSparing scheme(ramp_map(), 4, PsPoolPolicy::kRandom, rng);
  std::set<std::uint64_t> allocated;
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(scheme.on_wear_out(0));
    const std::uint64_t spare = scheme.resolve(0).value();
    EXPECT_TRUE(allocated.insert(spare).second) << "spare reused";
    // The spare is outside the working set.
    for (std::uint64_t i = 0; i < scheme.working_lines(); ++i) {
      EXPECT_NE(scheme.working_line(i).value(), spare);
    }
  }
  EXPECT_EQ(scheme.pool_remaining(), 0u);
  EXPECT_FALSE(scheme.on_wear_out(1));
  EXPECT_EQ(scheme.stats().line_deaths, 5u);
  EXPECT_EQ(scheme.stats().replacements, 4u);
}

TEST(PsTest, WorstPolicyAllocatesStrongestFirst) {
  Rng rng(10);
  PhysicalSparing scheme(ramp_map(), 16, PsPoolPolicy::kStrongest, rng);
  ASSERT_TRUE(scheme.on_wear_out(0));
  // First allocation comes from region 7 (endurance 80).
  EXPECT_GE(scheme.resolve(0).value(), 56u);
}

TEST(PsTest, ResetRestoresPoolAndMapping) {
  Rng rng(11);
  PhysicalSparing scheme(ramp_map(), 4, PsPoolPolicy::kRandom, rng);
  scheme.on_wear_out(0);
  scheme.reset();
  EXPECT_EQ(scheme.pool_remaining(), 4u);
  EXPECT_EQ(scheme.resolve(0), scheme.working_line(0));
}

TEST(FactoryTest, NamedConstructors) {
  Rng rng(12);
  EXPECT_EQ(make_no_spare(ramp_map())->name(), "none");
  EXPECT_EQ(make_pcd(ramp_map(), 8, rng)->name(), "pcd");
  EXPECT_EQ(make_ps(ramp_map(), 8, rng)->name(), "ps");
  EXPECT_EQ(make_ps_worst(ramp_map(), 8, rng)->name(), "ps-worst");
}

}  // namespace
}  // namespace nvmsec
