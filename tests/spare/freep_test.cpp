#include "spare/freep.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/event_sim.h"

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> ramp_map() {
  std::vector<Endurance> es;
  for (int r = 0; r < 8; ++r) es.push_back(10.0 * (r + 1));
  return std::make_shared<EnduranceMap>(DeviceGeometry::scaled(64, 8), es);
}

TEST(FreePTest, ConstructionValidation) {
  EXPECT_THROW(FreeP(ramp_map(), 0), std::invalid_argument);
  EXPECT_THROW(FreeP(ramp_map(), 64), std::invalid_argument);
}

TEST(FreePTest, PoolOccupiesAddressTail) {
  FreeP scheme(ramp_map(), 16);
  EXPECT_EQ(scheme.working_lines(), 48u);
  for (std::uint64_t i = 0; i < 48; ++i) {
    EXPECT_EQ(scheme.working_line(i).value(), i);
  }
}

TEST(FreePTest, ReplacementsAllocateInAddressOrder) {
  FreeP scheme(ramp_map(), 16);
  ASSERT_TRUE(scheme.on_wear_out(0));
  EXPECT_EQ(scheme.resolve(0).value(), 48u);
  ASSERT_TRUE(scheme.on_wear_out(5));
  EXPECT_EQ(scheme.resolve(5).value(), 49u);
}

TEST(FreePTest, PointerHopsAccumulateWithChainDepth) {
  FreeP scheme(ramp_map(), 16);
  EXPECT_EQ(scheme.chain_depth(0), 0u);
  scheme.resolve(0);
  EXPECT_EQ(scheme.total_pointer_hops(), 0u);  // unremapped: direct access
  scheme.on_wear_out(0);
  EXPECT_EQ(scheme.chain_depth(0), 1u);
  scheme.resolve(0);
  EXPECT_EQ(scheme.total_pointer_hops(), 1u);
  scheme.on_wear_out(0);  // the replacement dies too
  EXPECT_EQ(scheme.chain_depth(0), 2u);
  EXPECT_EQ(scheme.max_chain_depth(), 2u);
  scheme.resolve(0);
  EXPECT_EQ(scheme.total_pointer_hops(), 3u);
  EXPECT_GT(scheme.mean_pointer_hops(), 0.5);
}

TEST(FreePTest, PoolExhaustionFailsDevice) {
  FreeP scheme(ramp_map(), 2);
  EXPECT_TRUE(scheme.on_wear_out(0));
  EXPECT_TRUE(scheme.on_wear_out(1));
  EXPECT_FALSE(scheme.on_wear_out(2));
  EXPECT_EQ(scheme.stats().spares_remaining, 0u);
}

TEST(FreePTest, ResetRestoresBootState) {
  FreeP scheme(ramp_map(), 4);
  scheme.on_wear_out(0);
  scheme.resolve(0);
  scheme.reset();
  EXPECT_EQ(scheme.resolve(0).value(), 0u);
  EXPECT_EQ(scheme.chain_depth(0), 0u);
  EXPECT_EQ(scheme.total_pointer_hops(), 0u);
  EXPECT_EQ(scheme.stats().line_deaths, 0u);
}

TEST(FreePTest, LifetimeTracksPsAverageUnderUaa) {
  // §2.2.2: FREE-p ignores the endurance distribution, so its UAA lifetime
  // should resemble endurance-oblivious PS, not Max-WE.
  Rng rng(3);
  EnduranceModelParams params;
  params.endurance_at_mean = 1e5;
  const EnduranceModel model(params);
  auto map = std::make_shared<EnduranceMap>(EnduranceMap::from_model(
      DeviceGeometry::scaled(1 << 13, 128), model, rng));
  const std::uint64_t spare = map->geometry().num_lines() / 10;

  auto freep = make_freep(map, spare);
  UniformEventSimulator sim_freep(map, *freep);
  const double l_freep = sim_freep.run().normalized;

  Rng pool_rng(4);
  auto ps = make_ps(map, spare, pool_rng);
  UniformEventSimulator sim_ps(map, *ps);
  const double l_ps = sim_ps.run().normalized;

  EXPECT_NEAR(l_freep / l_ps, 1.0, 0.15);
}

}  // namespace
}  // namespace nvmsec
