#include "core/overhead.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

MappingOverheadInputs paper_inputs() {
  // §5.3.2: 1 GB NVM (4,194,304 x 256 B lines), 2048 regions, 10% spares,
  // 90% of the spares region-mapped.
  return MappingOverheadInputs::from_geometry(DeviceGeometry::paper_1gb(), 0.1,
                                              0.9);
}

TEST(OverheadInputsTest, FromGeometry) {
  const auto in = paper_inputs();
  EXPECT_EQ(in.num_lines, 4194304u);
  EXPECT_EQ(in.num_regions, 2048u);
  EXPECT_EQ(in.spare_lines, 419430u);
  EXPECT_DOUBLE_EQ(in.swr_fraction, 0.9);
}

TEST(OverheadInputsTest, Validation) {
  MappingOverheadInputs in;
  EXPECT_THROW(in.validate(), std::invalid_argument);  // empty geometry
  in = paper_inputs();
  in.swr_fraction = 1.5;
  EXPECT_THROW(in.validate(), std::invalid_argument);
  in = paper_inputs();
  in.spare_lines = in.num_lines;
  EXPECT_THROW(in.validate(), std::invalid_argument);
  in = paper_inputs();
  in.num_regions = in.num_lines + 1;
  EXPECT_THROW(in.validate(), std::invalid_argument);
  EXPECT_THROW(MappingOverheadInputs::from_geometry(
                   DeviceGeometry::paper_1gb(), 1.0, 0.9),
               std::invalid_argument);
}

TEST(OverheadTest, PaperHeadlineNumbers) {
  // §5.3.2: "the mapping table overhead of Max-WE and line-level mapping
  // are about 0.16MB and 1.1MB, respectively. The mapping table overhead of
  // Max-WE is only 15.0% of the traditional spare-line replacement schemes"
  // — i.e. the abstract's 85% reduction and 0.016% of total space.
  const auto out = mapping_overhead(paper_inputs());
  EXPECT_NEAR(out.maxwe_total_mb(), 0.16, 0.01);
  EXPECT_NEAR(out.traditional_mb(), 1.1, 0.01);
  EXPECT_NEAR(out.ratio, 0.15, 0.01);
  // Mapping overhead as a fraction of total capacity: ~0.016% (abstract).
  const double fraction = out.maxwe_total_bits / 8.0 / (1024.0 * 1024 * 1024);
  EXPECT_NEAR(fraction, 0.00016, 0.00002);
}

TEST(OverheadTest, ComponentFormulas) {
  MappingOverheadInputs in;
  in.num_lines = 1 << 20;
  in.num_regions = 1 << 10;
  in.spare_lines = 1000;
  in.swr_fraction = 0.8;
  const auto out = mapping_overhead(in);
  EXPECT_DOUBLE_EQ(out.lmt_bits, 0.2 * 1000 * 20);
  EXPECT_DOUBLE_EQ(out.rmt_bits, 0.8 * 1000 * 1024 * 10 / (1 << 20));
  EXPECT_DOUBLE_EQ(out.wear_out_tag_bits, 0.8 * 1000);
  EXPECT_DOUBLE_EQ(out.traditional_bits, 1000 * 20);
  EXPECT_DOUBLE_EQ(
      out.maxwe_total_bits,
      out.lmt_bits + out.rmt_bits + out.wear_out_tag_bits);
}

TEST(OverheadTest, AllLineLevelEqualsTraditional) {
  auto in = paper_inputs();
  in.swr_fraction = 0.0;  // no SWRs: pure line-level mapping
  const auto out = mapping_overhead(in);
  EXPECT_DOUBLE_EQ(out.maxwe_total_bits, out.traditional_bits);
  EXPECT_DOUBLE_EQ(out.ratio, 1.0);
}

TEST(OverheadTest, MoreSwrsMeansLessOverhead) {
  double prev = 2.0;
  for (double q : {0.0, 0.2, 0.6, 0.8, 0.9, 1.0}) {
    auto in = paper_inputs();
    in.swr_fraction = q;
    const double ratio = mapping_overhead(in).ratio;
    EXPECT_LT(ratio, prev) << "q=" << q;
    prev = ratio;
  }
}

TEST(OverheadTest, ZeroSparesZeroOverhead) {
  auto in = paper_inputs();
  in.spare_lines = 0;
  const auto out = mapping_overhead(in);
  EXPECT_DOUBLE_EQ(out.maxwe_total_bits, 0.0);
  EXPECT_DOUBLE_EQ(out.ratio, 0.0);
}

}  // namespace
}  // namespace nvmsec
