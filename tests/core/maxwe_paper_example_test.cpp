// The paper's worked example (Fig. 3) reproduced literally.
//
// Seven regions; region ids in ascending endurance order: 2-3-5-1-6-0-4.
// Max-WE must choose SWRs = {2, 3}, RWRs = {5, 1}, additional spare = {6},
// and pair region 1 with region 2 and region 5 with region 3 (weak-strong
// matching), leaving regions {0, 1, 4, 5} as the user space.
#include <gtest/gtest.h>

#include <memory>

#include "core/maxwe.h"

namespace nvmsec {
namespace {

std::shared_ptr<const EnduranceMap> fig3_map() {
  // Endurance ascending over region ids 2,3,5,1,6,0,4.
  std::vector<Endurance> es(7);
  es[2] = 10;
  es[3] = 20;
  es[5] = 30;
  es[1] = 40;
  es[6] = 50;
  es[0] = 60;
  es[4] = 70;
  // Fig. 3 draws 3 lines per region.
  return std::make_shared<EnduranceMap>(DeviceGeometry::scaled(21, 7), es);
}

MaxWe fig3_maxwe() {
  MaxWeParams params;
  params.spare_fraction = 3.0 / 7.0;  // 3 spare regions
  params.swr_fraction = 2.0 / 3.0;    // 2 of them SWRs
  return MaxWe(fig3_map(), params);
}

TEST(Fig3Test, WeakPriorityChoosesWeakestRegionsAsSWRs) {
  const MaxWe m = fig3_maxwe();
  ASSERT_EQ(m.swr_regions().size(), 2u);
  EXPECT_EQ(m.swr_regions()[0], RegionId{2});
  EXPECT_EQ(m.swr_regions()[1], RegionId{3});
}

TEST(Fig3Test, RemainingWeakestRegionsAreRWRs) {
  const MaxWe m = fig3_maxwe();
  ASSERT_EQ(m.rwr_regions().size(), 2u);
  EXPECT_EQ(m.rwr_regions()[0], RegionId{5});
  EXPECT_EQ(m.rwr_regions()[1], RegionId{1});
}

TEST(Fig3Test, AdditionalSpareIsNextWeakest) {
  const MaxWe m = fig3_maxwe();
  ASSERT_EQ(m.asr_regions().size(), 1u);
  EXPECT_EQ(m.asr_regions()[0], RegionId{6});
}

TEST(Fig3Test, WeakStrongMatchingPairsAsInThePaper) {
  const MaxWe m = fig3_maxwe();
  // "the strongest region of RWRs (region 1) is paired with the weakest
  // region of SWRs (region 2), and the weaker region (region 5) is paired
  // with the stronger region (region 3)".
  EXPECT_EQ(m.rmt().spare_of(RegionId{1}), RegionId{2});
  EXPECT_EQ(m.rmt().spare_of(RegionId{5}), RegionId{3});
}

TEST(Fig3Test, UserSpaceIsEverythingButSpares) {
  MaxWe m = fig3_maxwe();
  EXPECT_EQ(m.working_lines(), 12u);  // regions {0,1,4,5} x 3 lines
  std::set<std::uint64_t> regions;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    regions.insert(m.working_line(i).value() / 3);
  }
  EXPECT_EQ(regions, (std::set<std::uint64_t>{0, 1, 4, 5}));
}

TEST(Fig3Test, RwrWearOutRedirectsToPairedSwrLineSameOffset) {
  MaxWe m = fig3_maxwe();
  // Find the working index of region 1, line offset 2 (physical line 5).
  std::uint64_t idx = UINT64_MAX;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    if (m.working_line(i).value() == 5) idx = i;
  }
  ASSERT_NE(idx, UINT64_MAX);
  EXPECT_TRUE(m.on_wear_out(idx));
  // Region 1 is rescued by region 2: line 5 = (region 1, offset 2) maps to
  // (region 2, offset 2) = physical line 8.
  EXPECT_EQ(m.resolve(idx).value(), 8u);
  EXPECT_TRUE(m.rmt().wear_out_tag(RegionId{1}, LineInRegion{2}));
  EXPECT_EQ(m.translate_read(PhysLineAddr{5}).value(), 8u);
}

TEST(Fig3Test, OutsideRwrWearOutUsesAdditionalSpare) {
  MaxWe m = fig3_maxwe();
  // Region 0 is plain user space ("region 6 [rescues] all the wear-out
  // lines (region 0) outside the RWRs dynamically").
  std::uint64_t idx = UINT64_MAX;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    if (m.working_line(i).value() == 1) idx = i;  // region 0, offset 1
  }
  ASSERT_NE(idx, UINT64_MAX);
  EXPECT_TRUE(m.on_wear_out(idx));
  const PhysLineAddr spare = m.resolve(idx);
  EXPECT_EQ(spare.value() / 3, 6u);  // a region-6 line
  EXPECT_EQ(m.lmt().lookup(PhysLineAddr{1}), spare);
  EXPECT_EQ(m.translate_read(PhysLineAddr{1}), spare);
}

TEST(Fig3Test, AsrPoolExhaustionFailsDevice) {
  MaxWe m = fig3_maxwe();
  // Region 6 has 3 spare lines; wear out 3 region-0/4 lines, then a 4th.
  std::vector<std::uint64_t> outside;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    const std::uint64_t r = m.working_line(i).value() / 3;
    if (r == 0 || r == 4) outside.push_back(i);
  }
  ASSERT_GE(outside.size(), 4u);
  EXPECT_TRUE(m.on_wear_out(outside[0]));
  EXPECT_TRUE(m.on_wear_out(outside[1]));
  EXPECT_TRUE(m.on_wear_out(outside[2]));
  EXPECT_EQ(m.asr_pool_remaining(), 0u);
  EXPECT_FALSE(m.on_wear_out(outside[3]));
}

TEST(Fig3Test, MappingOverheadCountsBothTables) {
  const MaxWe m = fig3_maxwe();
  // RMT: 2 pairs x (ceil(log2 7)=3 id bits + 3 tag bits) = 12 bits.
  // LMT: 3 spare lines x ceil(log2 21)=5 bits = 15 bits.
  EXPECT_EQ(m.rmt().storage_bits(), 12u);
  EXPECT_EQ(m.lmt().storage_bits(), 15u);
  EXPECT_EQ(m.mapping_overhead_bits(), 27u);
}

}  // namespace
}  // namespace nvmsec
