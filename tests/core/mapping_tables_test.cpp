#include "core/mapping_tables.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

TEST(CeilLog2Test, KnownValues) {
  EXPECT_THROW(ceil_log2(0), std::invalid_argument);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(2048), 11u);
  EXPECT_EQ(ceil_log2(1ULL << 22), 22u);
  EXPECT_EQ(ceil_log2((1ULL << 22) + 1), 23u);
}

TEST(RmtTest, ConstructionValidation) {
  EXPECT_THROW(RegionMappingTable(0, 4), std::invalid_argument);
  EXPECT_THROW(RegionMappingTable(4, 0), std::invalid_argument);
}

TEST(RmtTest, AddAndLookupPairs) {
  RegionMappingTable rmt(8, 4);
  rmt.add_pair(RegionId{3}, RegionId{0});
  rmt.add_pair(RegionId{5}, RegionId{1});
  EXPECT_EQ(rmt.size(), 2u);
  EXPECT_TRUE(rmt.has_region(RegionId{3}));
  EXPECT_FALSE(rmt.has_region(RegionId{0}));  // sra is not a pra
  EXPECT_EQ(rmt.spare_of(RegionId{3}), RegionId{0});
  EXPECT_EQ(rmt.spare_of(RegionId{5}), RegionId{1});
  EXPECT_EQ(rmt.spare_of(RegionId{7}), std::nullopt);
  ASSERT_EQ(rmt.pairs().size(), 2u);
  EXPECT_EQ(rmt.pairs()[0].first, RegionId{3});
  EXPECT_EQ(rmt.pairs()[0].second, RegionId{0});
}

TEST(RmtTest, PairConstraints) {
  RegionMappingTable rmt(8, 4);
  rmt.add_pair(RegionId{3}, RegionId{0});
  EXPECT_THROW(rmt.add_pair(RegionId{3}, RegionId{1}), std::invalid_argument);
  EXPECT_THROW(rmt.add_pair(RegionId{4}, RegionId{0}), std::invalid_argument);
  EXPECT_THROW(rmt.add_pair(RegionId{4}, RegionId{4}), std::invalid_argument);
  EXPECT_THROW(rmt.add_pair(RegionId{8}, RegionId{0}), std::invalid_argument);
  EXPECT_THROW(rmt.add_pair(RegionId{4}, RegionId{9}), std::invalid_argument);
}

TEST(RmtTest, WearOutTags) {
  RegionMappingTable rmt(8, 4);
  rmt.add_pair(RegionId{3}, RegionId{0});
  EXPECT_FALSE(rmt.wear_out_tag(RegionId{3}, LineInRegion{2}));
  rmt.set_wear_out_tag(RegionId{3}, LineInRegion{2});
  EXPECT_TRUE(rmt.wear_out_tag(RegionId{3}, LineInRegion{2}));
  EXPECT_FALSE(rmt.wear_out_tag(RegionId{3}, LineInRegion{1}));
  EXPECT_EQ(rmt.tags_set(), 1u);
  // Setting twice does not double-count.
  rmt.set_wear_out_tag(RegionId{3}, LineInRegion{2});
  EXPECT_EQ(rmt.tags_set(), 1u);
}

TEST(RmtTest, TagAccessValidation) {
  RegionMappingTable rmt(8, 4);
  rmt.add_pair(RegionId{3}, RegionId{0});
  EXPECT_THROW(rmt.wear_out_tag(RegionId{4}, LineInRegion{0}),
               std::invalid_argument);
  EXPECT_THROW(rmt.wear_out_tag(RegionId{3}, LineInRegion{4}),
               std::out_of_range);
  EXPECT_THROW(rmt.set_wear_out_tag(RegionId{4}, LineInRegion{0}),
               std::invalid_argument);
}

TEST(RmtTest, StorageBitsPerPair) {
  RegionMappingTable rmt(2048, 2048);
  rmt.add_pair(RegionId{1}, RegionId{0});
  // Per pair: log2(2048)=11 id bits + 2048 wear-out tag bits.
  EXPECT_EQ(rmt.storage_bits(), 11u + 2048u);
  rmt.add_pair(RegionId{3}, RegionId{2});
  EXPECT_EQ(rmt.storage_bits(), 2 * (11u + 2048u));
}

TEST(RmtTest, ResetTagsKeepsPairs) {
  RegionMappingTable rmt(8, 4);
  rmt.add_pair(RegionId{3}, RegionId{0});
  rmt.set_wear_out_tag(RegionId{3}, LineInRegion{1});
  rmt.reset_tags();
  EXPECT_EQ(rmt.tags_set(), 0u);
  EXPECT_FALSE(rmt.wear_out_tag(RegionId{3}, LineInRegion{1}));
  EXPECT_EQ(rmt.size(), 1u);
}

TEST(LmtTest, LookupInsertErase) {
  LineMappingTable lmt(4, 100);
  EXPECT_EQ(lmt.lookup(PhysLineAddr{10}), std::nullopt);
  lmt.insert_or_replace(PhysLineAddr{10}, PhysLineAddr{90});
  EXPECT_EQ(lmt.lookup(PhysLineAddr{10}), PhysLineAddr{90});
  lmt.insert_or_replace(PhysLineAddr{10}, PhysLineAddr{91});  // replace
  EXPECT_EQ(lmt.lookup(PhysLineAddr{10}), PhysLineAddr{91});
  EXPECT_EQ(lmt.size(), 1u);
  lmt.erase(PhysLineAddr{10});
  EXPECT_EQ(lmt.lookup(PhysLineAddr{10}), std::nullopt);
  EXPECT_EQ(lmt.size(), 0u);
}

TEST(LmtTest, CapacityEnforced) {
  LineMappingTable lmt(2, 100);
  lmt.insert_or_replace(PhysLineAddr{1}, PhysLineAddr{90});
  lmt.insert_or_replace(PhysLineAddr{2}, PhysLineAddr{91});
  EXPECT_THROW(lmt.insert_or_replace(PhysLineAddr{3}, PhysLineAddr{92}),
               std::length_error);
  // Replacing an existing key is allowed at capacity.
  EXPECT_NO_THROW(lmt.insert_or_replace(PhysLineAddr{1}, PhysLineAddr{93}));
}

TEST(LmtTest, AddressRangeEnforced) {
  LineMappingTable lmt(4, 100);
  EXPECT_THROW(lmt.insert_or_replace(PhysLineAddr{100}, PhysLineAddr{0}),
               std::out_of_range);
  EXPECT_THROW(lmt.insert_or_replace(PhysLineAddr{0}, PhysLineAddr{100}),
               std::out_of_range);
}

TEST(LmtTest, StorageBitsIsCapacityTimesPointer) {
  // Provisioned cost, not occupancy: capacity * ceil(log2(num_lines)).
  LineMappingTable lmt(10, 1ULL << 22);
  EXPECT_EQ(lmt.storage_bits(), 10u * 22u);
  lmt.insert_or_replace(PhysLineAddr{0}, PhysLineAddr{1});
  EXPECT_EQ(lmt.storage_bits(), 10u * 22u);
}

TEST(LmtTest, ClearEmptiesTable) {
  LineMappingTable lmt(4, 100);
  lmt.insert_or_replace(PhysLineAddr{1}, PhysLineAddr{2});
  lmt.clear();
  EXPECT_EQ(lmt.size(), 0u);
}

TEST(RmtTest, VerifyIsCleanAfterNormalMutation) {
  RegionMappingTable rmt(16, 4);
  rmt.add_pair(RegionId{3}, RegionId{10});
  rmt.add_pair(RegionId{5}, RegionId{11});
  rmt.set_wear_out_tag(RegionId{3}, LineInRegion{2});
  EXPECT_TRUE(rmt.verify().empty());
  rmt.reset_tags();
  EXPECT_TRUE(rmt.verify().empty());
}

TEST(RmtTest, VerifyCatchesCorruptedSpareRegionId) {
  RegionMappingTable rmt(16, 4);
  rmt.add_pair(RegionId{3}, RegionId{10});
  rmt.add_pair(RegionId{5}, RegionId{11});
  rmt.debug_corrupt_sra(RegionId{5}, 1);
  const std::vector<RegionId> bad = rmt.verify();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], RegionId{5});
}

TEST(RmtTest, VerifyCatchesFlippedWearOutTag) {
  RegionMappingTable rmt(16, 4);
  rmt.add_pair(RegionId{3}, RegionId{10});
  rmt.debug_flip_tag(RegionId{3}, LineInRegion{1});
  const std::vector<RegionId> bad = rmt.verify();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], RegionId{3});
  // The tag itself did flip; only the stale parity gives it away.
  EXPECT_TRUE(rmt.wear_out_tag(RegionId{3}, LineInRegion{1}));
}

TEST(RmtTest, DebugCorruptionValidatesItsTarget) {
  RegionMappingTable rmt(16, 4);
  rmt.add_pair(RegionId{3}, RegionId{10});
  EXPECT_THROW(rmt.debug_corrupt_sra(RegionId{7}, 0), std::invalid_argument);
  EXPECT_THROW(rmt.debug_corrupt_sra(RegionId{3}, 32), std::out_of_range);
  EXPECT_THROW(rmt.debug_flip_tag(RegionId{3}, LineInRegion{4}),
               std::out_of_range);
}

TEST(LmtTest, VerifyIsCleanAfterNormalMutation) {
  LineMappingTable lmt(4, 100);
  lmt.insert_or_replace(PhysLineAddr{1}, PhysLineAddr{90});
  lmt.insert_or_replace(PhysLineAddr{2}, PhysLineAddr{91});
  lmt.insert_or_replace(PhysLineAddr{1}, PhysLineAddr{92});
  lmt.erase(PhysLineAddr{2});
  EXPECT_TRUE(lmt.verify().empty());
}

TEST(LmtTest, VerifyCatchesCorruptedEntry) {
  LineMappingTable lmt(4, 100);
  lmt.insert_or_replace(PhysLineAddr{1}, PhysLineAddr{90});
  lmt.insert_or_replace(PhysLineAddr{2}, PhysLineAddr{91});
  lmt.debug_corrupt_entry(PhysLineAddr{2}, 0);
  const std::vector<PhysLineAddr> bad = lmt.verify();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], PhysLineAddr{2});
}

TEST(LmtTest, DebugCorruptionValidatesItsTarget) {
  LineMappingTable lmt(4, 100);
  lmt.insert_or_replace(PhysLineAddr{1}, PhysLineAddr{90});
  EXPECT_THROW(lmt.debug_corrupt_entry(PhysLineAddr{9}, 0),
               std::invalid_argument);
  EXPECT_THROW(lmt.debug_corrupt_entry(PhysLineAddr{1}, 64),
               std::out_of_range);
}

}  // namespace
}  // namespace nvmsec
