// Parameter-grid property sweep for Max-WE: structural invariants that
// must hold for every (spare_fraction, swr_fraction, selection, matching)
// combination, checked after arbitrary wear-out activity.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "core/maxwe.h"

namespace nvmsec {
namespace {

using GridParam = std::tuple<double, double, SpareSelectionPolicy,
                             MatchingPolicy>;

std::shared_ptr<const EnduranceMap> grid_map() {
  // 64 regions x 8 lines with a sampled (non-monotone) endurance layout.
  Rng rng(31);
  EnduranceModelParams params;
  params.endurance_at_mean = 1000.0;
  const EnduranceModel model(params);
  static const auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::scaled(512, 64), model, rng));
  return map;
}

class MaxWeGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(MaxWeGridTest, StructuralInvariantsSurviveWear) {
  const auto& [spare, swr, selection, matching] = GetParam();
  MaxWeParams p;
  p.spare_fraction = spare;
  p.swr_fraction = swr;
  p.selection = selection;
  p.matching = matching;
  MaxWe m(grid_map(), p);

  // Role populations are disjoint and complete.
  std::set<std::uint64_t> roles;
  for (RegionId r : m.swr_regions()) {
    EXPECT_TRUE(roles.insert(r.value()).second);
  }
  for (RegionId r : m.asr_regions()) {
    EXPECT_TRUE(roles.insert(r.value()).second);
  }
  for (RegionId r : m.rwr_regions()) {
    EXPECT_TRUE(roles.insert(r.value()).second) << "RWR overlaps spares";
  }
  EXPECT_EQ(m.rmt().size(), m.swr_regions().size());
  EXPECT_EQ(m.working_lines(),
            (64 - m.swr_regions().size() - m.asr_regions().size()) * 8);

  // Hammer the scheme with wear-outs until it refuses, checking the cache
  // and tables stay consistent and backings stay injective.
  Rng rng(7);
  bool alive = true;
  int deaths = 0;
  while (alive && deaths < 2000) {
    alive = m.on_wear_out(rng.uniform_u64(m.working_lines()));
    ++deaths;
    if (deaths % 64 == 0) {
      std::set<std::uint64_t> backings;
      for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
        EXPECT_TRUE(backings.insert(m.resolve(i).value()).second);
        EXPECT_EQ(m.resolve(i), m.translate_read(m.working_line(i)));
      }
    }
  }
  EXPECT_FALSE(alive);  // spares are finite
  // LMT occupancy can never exceed the ASR pool.
  EXPECT_LE(m.lmt().size(), m.asr_regions().size() * 8);
}

std::string grid_param_name(const ::testing::TestParamInfo<GridParam>& info) {
  const double spare = std::get<0>(info.param);
  const double swr = std::get<1>(info.param);
  std::string name = "spare" + std::to_string(static_cast<int>(spare * 100)) +
                     "_swr" + std::to_string(static_cast<int>(swr * 100));
  name += std::get<2>(info.param) == SpareSelectionPolicy::kWeakPriority
              ? "_weak"
              : "_rand";
  name += std::get<3>(info.param) == MatchingPolicy::kWeakStrong ? "_antitone"
                                                                 : "_ident";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MaxWeGridTest,
    ::testing::Combine(
        ::testing::Values(0.1, 0.25, 0.4),
        ::testing::Values(0.0, 0.5, 0.9, 1.0),
        ::testing::Values(SpareSelectionPolicy::kWeakPriority,
                          SpareSelectionPolicy::kRandomRegions),
        ::testing::Values(MatchingPolicy::kWeakStrong,
                          MatchingPolicy::kIdentity)),
    grid_param_name);

}  // namespace
}  // namespace nvmsec
