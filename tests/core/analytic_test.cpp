#include "core/analytic.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

LinearLifetimeModel model(double n, double el, double eh, double s) {
  LinearLifetimeModel m;
  m.num_lines = n;
  m.e_low = el;
  m.e_high = eh;
  m.spare_lines = s;
  return m;
}

TEST(LinearModelTest, Validation) {
  EXPECT_THROW(model(0, 1, 2, 0).ideal(), std::invalid_argument);
  EXPECT_THROW(model(10, 0, 2, 0).ideal(), std::invalid_argument);
  EXPECT_THROW(model(10, 3, 2, 0).ideal(), std::invalid_argument);
  EXPECT_THROW(model(10, 1, 2, 10).ideal(), std::invalid_argument);
  EXPECT_THROW(model(10, 1, 2, -1).ideal(), std::invalid_argument);
}

TEST(LinearModelTest, Equation3Ideal) {
  // L_ideal = N*(EH-EL)/2 + N*EL.
  const auto m = model(100, 10, 50, 0);
  EXPECT_DOUBLE_EQ(m.ideal(), 100 * 40 / 2.0 + 100 * 10);
}

TEST(LinearModelTest, Equation4UnprotectedUaa) {
  const auto m = model(100, 10, 50, 0);
  EXPECT_DOUBLE_EQ(m.uaa_unprotected(), 1000.0);
}

TEST(LinearModelTest, Equation5RatioMatchesPaperSpotValue) {
  // "If EH is 50 times more than EL, LUAA will be only 3.9% of the ideal
  // lifetime": 2/(50+1) = 3.92%.
  const auto m = model(1000, 1, 50, 0);
  EXPECT_NEAR(m.uaa_fraction_of_ideal(), 0.0392, 0.0002);
  EXPECT_NEAR(m.uaa_unprotected() / m.ideal(), m.uaa_fraction_of_ideal(),
              1e-12);
}

TEST(LinearModelTest, Equation6MaxWe) {
  const auto m = model(100, 10, 50, 10);
  // (N-S) * (EL + 2S(EH-EL)/N) = 90 * (10 + 2*10*40/100) = 90*18.
  EXPECT_DOUBLE_EQ(m.maxwe(), 90.0 * 18.0);
}

TEST(LinearModelTest, Equation7PcdPs) {
  const auto m = model(100, 10, 50, 10);
  // S(N-S/2)(EH-EL)/N + N*EL = 10*95*40/100 + 1000 = 380 + 1000.
  EXPECT_DOUBLE_EQ(m.pcd_ps(), 1380.0);
}

TEST(LinearModelTest, Equation8PsWorst) {
  const auto m = model(100, 10, 50, 10);
  // (N-S)(EL + S(EH-EL)/N) = 90 * (10 + 4) = 1260.
  EXPECT_DOUBLE_EQ(m.ps_worst(), 1260.0);
}

TEST(LinearModelTest, PaperSection43SpotValues) {
  // §4.3: "Assuming that p = 0.1 and q = 50, Max-WE, PCD/PS and PS-worst
  // can achieve 38.1%, 22.2% and 20.8% of the ideal lifetime."
  const Fig5Point pt = fig5_point(0.1, 50.0);
  EXPECT_NEAR(pt.maxwe, 0.381, 0.002);
  EXPECT_NEAR(pt.pcd_ps, 0.222, 0.002);
  EXPECT_NEAR(pt.ps_worst, 0.208, 0.002);
}

TEST(LinearModelTest, MaxWeDominatesAlternatives) {
  // "Max-WE always outperforms both PCD/PS and PS-worst" over Fig. 5's
  // parameter box.
  for (double p = 0.1; p <= 0.3001; p += 0.025) {
    for (double q = 10; q <= 100.001; q += 7.5) {
      const Fig5Point pt = fig5_point(p, q);
      EXPECT_GE(pt.maxwe, pt.pcd_ps - 1e-12) << "p=" << p << " q=" << q;
      EXPECT_GE(pt.pcd_ps, pt.ps_worst - 1e-12) << "p=" << p << " q=" << q;
    }
  }
}

TEST(LinearModelTest, NoSparesCollapsesToUnprotected) {
  const auto m = model(100, 10, 50, 0);
  EXPECT_DOUBLE_EQ(m.maxwe(), m.uaa_unprotected());
  EXPECT_DOUBLE_EQ(m.ps_worst(), m.uaa_unprotected());
  EXPECT_DOUBLE_EQ(m.pcd_ps(), m.uaa_unprotected());
}

TEST(LinearModelTest, NoVariationMakesSparesMatterLess) {
  // With EH == EL every scheme reaches the same lifetime bound N*EL minus
  // the capacity sacrificed for spares.
  const auto m = model(100, 10, 10, 10);
  EXPECT_DOUBLE_EQ(m.ideal(), 1000.0);
  EXPECT_DOUBLE_EQ(m.uaa_fraction_of_ideal(), 1.0);
  EXPECT_DOUBLE_EQ(m.maxwe(), 900.0);
  EXPECT_DOUBLE_EQ(m.pcd_ps(), 1000.0);
}

TEST(Fig5Test, PointValidation) {
  EXPECT_THROW(fig5_point(-0.1, 50), std::invalid_argument);
  EXPECT_THROW(fig5_point(1.0, 50), std::invalid_argument);
  EXPECT_THROW(fig5_point(0.1, 0.5), std::invalid_argument);
}

TEST(Fig5Test, SurfaceShapeAndBounds) {
  EXPECT_THROW(fig5_surface(0.1, 0.3, 1, 10, 100, 5), std::invalid_argument);
  const auto surface = fig5_surface(0.1, 0.3, 5, 10, 100, 7);
  ASSERT_EQ(surface.size(), 35u);
  EXPECT_DOUBLE_EQ(surface.front().p, 0.1);
  EXPECT_DOUBLE_EQ(surface.front().q, 10.0);
  EXPECT_DOUBLE_EQ(surface.back().p, 0.3);
  EXPECT_DOUBLE_EQ(surface.back().q, 100.0);
  for (const auto& pt : surface) {
    EXPECT_GT(pt.maxwe, 0.0);
    EXPECT_LE(pt.maxwe, 1.0);
    EXPECT_GE(pt.maxwe, pt.pcd_ps - 1e-12);
    EXPECT_GE(pt.pcd_ps, pt.ps_worst - 1e-12);
  }
}

TEST(Fig5Test, LifetimeDecreasesWithVariation) {
  // Along the q axis every scheme's normalized lifetime falls.
  double prev_maxwe = 1.0, prev_pcd = 1.0, prev_worst = 1.0;
  for (double q = 10; q <= 100; q += 10) {
    const auto pt = fig5_point(0.2, q);
    EXPECT_LT(pt.maxwe, prev_maxwe);
    EXPECT_LT(pt.pcd_ps, prev_pcd);
    EXPECT_LT(pt.ps_worst, prev_worst);
    prev_maxwe = pt.maxwe;
    prev_pcd = pt.pcd_ps;
    prev_worst = pt.ps_worst;
  }
}

TEST(Fig5Test, MoreSparesHelpMaxWeMost) {
  const auto lo = fig5_point(0.1, 50);
  const auto hi = fig5_point(0.3, 50);
  EXPECT_GT(hi.maxwe - lo.maxwe, hi.ps_worst - lo.ps_worst);
}

}  // namespace
}  // namespace nvmsec
