#include "core/maxwe.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace nvmsec {
namespace {

// 32 regions x 8 lines; region r has endurance 10*(r+1) so region ids are
// already in ascending endurance order.
std::shared_ptr<const EnduranceMap> ramp_map() {
  std::vector<Endurance> es;
  for (int r = 0; r < 32; ++r) es.push_back(10.0 * (r + 1));
  return std::make_shared<EnduranceMap>(DeviceGeometry::scaled(256, 32), es);
}

MaxWeParams params(double spare = 0.25, double swr = 0.75) {
  MaxWeParams p;
  p.spare_fraction = spare;  // 8 regions
  p.swr_fraction = swr;      // 6 SWRs, 2 ASRs
  return p;
}

TEST(MaxWeParamsTest, Validation) {
  MaxWeParams p;
  EXPECT_NO_THROW(p.validate());
  p.spare_fraction = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.spare_fraction = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.swr_fraction = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(MaxWeTest, RegionRolesFromRamp) {
  MaxWe m(ramp_map(), params());
  // SWR = regions 0..5, RWR = 6..11, ASR = 12..13.
  ASSERT_EQ(m.swr_regions().size(), 6u);
  ASSERT_EQ(m.rwr_regions().size(), 6u);
  ASSERT_EQ(m.asr_regions().size(), 2u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(m.swr_regions()[i].value(), i);
    EXPECT_EQ(m.rwr_regions()[i].value(), 6 + i);
  }
  EXPECT_EQ(m.asr_regions()[0].value(), 12u);
  EXPECT_EQ(m.asr_regions()[1].value(), 13u);
  // Working space: 32 - 8 spare regions = 24 regions.
  EXPECT_EQ(m.working_lines(), 24u * 8u);
}

TEST(MaxWeTest, WeakStrongMatchingIsAntitone) {
  MaxWe m(ramp_map(), params());
  // Weakest RWR (6) <- strongest SWR (5); strongest RWR (11) <- weakest (0).
  EXPECT_EQ(m.rmt().spare_of(RegionId{6}), RegionId{5});
  EXPECT_EQ(m.rmt().spare_of(RegionId{7}), RegionId{4});
  EXPECT_EQ(m.rmt().spare_of(RegionId{11}), RegionId{0});
  // Chain capacities e_rwr + e_swr are balanced: every pair sums to
  // 10*(7+6) = 130.
  const auto map = ramp_map();
  for (const auto& [pra, sra] : m.rmt().pairs()) {
    EXPECT_DOUBLE_EQ(
        map->region_endurance(pra) + map->region_endurance(sra), 130.0);
  }
}

TEST(MaxWeTest, SpareConfigLeavingNoUserSpaceThrows) {
  MaxWeParams p;
  p.spare_fraction = 0.5;  // 16 spare regions, 12 SWR -> 2*12+4 = 28 < 32 OK
  p.swr_fraction = 0.75;
  EXPECT_NO_THROW(MaxWe(ramp_map(), p));
  p.spare_fraction = 0.6;  // 19 spare, 14 SWR -> 2*14+5 = 33 > 32
  p.swr_fraction = 0.75;
  EXPECT_THROW(MaxWe(ramp_map(), p), std::invalid_argument);
}

TEST(MaxWeTest, ZeroSpareBehavesLikeNoProtection) {
  MaxWe m(ramp_map(), params(0.0, 0.9));
  EXPECT_EQ(m.working_lines(), 256u);
  EXPECT_FALSE(m.on_wear_out(0));
}

TEST(MaxWeTest, AllSwrNoAsr) {
  MaxWe m(ramp_map(), params(0.25, 1.0));
  EXPECT_EQ(m.asr_regions().size(), 0u);
  EXPECT_EQ(m.asr_pool_remaining(), 0u);
  // A non-RWR wear-out cannot be replaced.
  std::uint64_t outside_idx = UINT64_MAX;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    if (m.working_line(i).value() / 8 >= 20) {
      outside_idx = i;
      break;
    }
  }
  ASSERT_NE(outside_idx, UINT64_MAX);
  EXPECT_FALSE(m.on_wear_out(outside_idx));
}

TEST(MaxWeTest, AllAsrNoSwr) {
  MaxWe m(ramp_map(), params(0.25, 0.0));
  EXPECT_EQ(m.swr_regions().size(), 0u);
  EXPECT_EQ(m.rwr_regions().size(), 0u);
  EXPECT_EQ(m.rmt().size(), 0u);
  EXPECT_EQ(m.asr_pool_remaining(), 8u * 8u);
  // Every wear-out takes the LMT path.
  EXPECT_TRUE(m.on_wear_out(0));
  EXPECT_EQ(m.lmt().size(), 1u);
}

TEST(MaxWeTest, AsrAllocationIsStrongestFirst) {
  MaxWe m(ramp_map(), params());
  // ASR regions are 12 (endurance 130) and 13 (endurance 140): allocation
  // must start in region 13.
  std::uint64_t outside_idx = 0;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    if (m.working_line(i).value() / 8 >= 14) {
      outside_idx = i;
      break;
    }
  }
  ASSERT_TRUE(m.on_wear_out(outside_idx));
  EXPECT_EQ(m.resolve(outside_idx).value() / 8, 13u);
}

TEST(MaxWeTest, SwrPartnerDeathFallsBackToAsr) {
  MaxWe m(ramp_map(), params());
  // Working index of an RWR line (region 6).
  std::uint64_t idx = UINT64_MAX;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    if (m.working_line(i).value() / 8 == 6) {
      idx = i;
      break;
    }
  }
  ASSERT_NE(idx, UINT64_MAX);
  ASSERT_TRUE(m.on_wear_out(idx));  // -> SWR partner (region 5)
  EXPECT_EQ(m.resolve(idx).value() / 8, 5u);
  ASSERT_TRUE(m.on_wear_out(idx));  // partner dies -> ASR via LMT
  EXPECT_EQ(m.resolve(idx).value() / 8, 13u);
  EXPECT_EQ(m.lmt().size(), 1u);
  // Read path: LMT entry takes precedence over the RMT wear-out tag.
  EXPECT_EQ(m.translate_read(m.working_line(idx)), m.resolve(idx));
}

TEST(MaxWeTest, LmtSpareDeathReplacesEntry) {
  MaxWe m(ramp_map(), params());
  std::uint64_t idx = 0;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    if (m.working_line(i).value() / 8 >= 14) {
      idx = i;
      break;
    }
  }
  ASSERT_TRUE(m.on_wear_out(idx));
  const PhysLineAddr first = m.resolve(idx);
  ASSERT_TRUE(m.on_wear_out(idx));  // the spare itself dies
  const PhysLineAddr second = m.resolve(idx);
  EXPECT_NE(first, second);
  EXPECT_EQ(m.lmt().size(), 1u);  // old entry replaced, not leaked
  EXPECT_EQ(m.lmt().lookup(m.working_line(idx)), second);
}

TEST(MaxWeTest, ResolveMatchesTranslateReadEverywhere) {
  MaxWe m(ramp_map(), params());
  Rng rng(3);
  // Randomly wear out a bunch of lines, then check cache/table agreement.
  for (int k = 0; k < 60; ++k) {
    const std::uint64_t idx = rng.uniform_u64(m.working_lines());
    m.on_wear_out(idx);
  }
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    EXPECT_EQ(m.resolve(i), m.translate_read(m.working_line(i))) << i;
  }
}

TEST(MaxWeTest, SparesNeverAliasAcrossWorkingIndices) {
  MaxWe m(ramp_map(), params());
  std::set<std::uint64_t> backings;
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    EXPECT_TRUE(backings.insert(m.resolve(i).value()).second);
  }
  // After a wave of wear-outs the mapping must stay injective.
  for (std::uint64_t i = 0; i < 40; ++i) m.on_wear_out(i);
  backings.clear();
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    EXPECT_TRUE(backings.insert(m.resolve(i).value()).second);
  }
}

TEST(MaxWeTest, StatsReflectState) {
  MaxWe m(ramp_map(), params());
  const auto before = m.stats();
  EXPECT_EQ(before.line_deaths, 0u);
  EXPECT_EQ(before.rmt_entries, 6u);
  EXPECT_EQ(before.lmt_entries, 0u);
  EXPECT_EQ(before.spares_remaining, 16u);
  m.on_wear_out(0);
  const auto after = m.stats();
  EXPECT_EQ(after.line_deaths, 1u);
  EXPECT_EQ(after.replacements, 1u);
}

TEST(MaxWeTest, ResetRestoresBootState) {
  MaxWe m(ramp_map(), params());
  for (std::uint64_t i = 0; i < 30; ++i) m.on_wear_out(i);
  m.reset();
  EXPECT_EQ(m.stats().line_deaths, 0u);
  EXPECT_EQ(m.lmt().size(), 0u);
  EXPECT_EQ(m.rmt().tags_set(), 0u);
  EXPECT_EQ(m.asr_pool_remaining(), 16u);
  for (std::uint64_t i = 0; i < m.working_lines(); ++i) {
    EXPECT_EQ(m.resolve(i), m.working_line(i));
  }
}

TEST(MaxWeTest, OutOfRangeAccessesThrow) {
  MaxWe m(ramp_map(), params());
  EXPECT_THROW(m.working_line(m.working_lines()), std::out_of_range);
  EXPECT_THROW(m.resolve(m.working_lines()), std::out_of_range);
  EXPECT_THROW(m.on_wear_out(m.working_lines()), std::out_of_range);
  EXPECT_THROW(m.translate_read(PhysLineAddr{256}), std::out_of_range);
}

TEST(MaxWeAblationTest, RandomSelectionIsDeterministicPerSeed) {
  MaxWeParams p = params();
  p.selection = SpareSelectionPolicy::kRandomRegions;
  p.selection_seed = 7;
  MaxWe a(ramp_map(), p);
  MaxWe b(ramp_map(), p);
  EXPECT_EQ(a.swr_regions(), b.swr_regions());
  EXPECT_EQ(a.asr_regions(), b.asr_regions());
  p.selection_seed = 8;
  MaxWe c(ramp_map(), p);
  EXPECT_NE(a.swr_regions(), c.swr_regions());
}

TEST(MaxWeAblationTest, RandomSelectionKeepsStructureValid) {
  MaxWeParams p = params();
  p.selection = SpareSelectionPolicy::kRandomRegions;
  MaxWe m(ramp_map(), p);
  // Same population counts as weak-priority.
  EXPECT_EQ(m.swr_regions().size(), 6u);
  EXPECT_EQ(m.rwr_regions().size(), 6u);
  EXPECT_EQ(m.asr_regions().size(), 2u);
  EXPECT_EQ(m.rmt().size(), 6u);
  // RWRs are user space and never overlap the spare regions.
  std::set<std::uint64_t> spare_set;
  for (RegionId r : m.swr_regions()) spare_set.insert(r.value());
  for (RegionId r : m.asr_regions()) spare_set.insert(r.value());
  EXPECT_EQ(spare_set.size(), 8u);
  for (RegionId r : m.rwr_regions()) {
    EXPECT_FALSE(spare_set.contains(r.value()));
  }
  // SWR slice is endurance-sorted, so matching stays antitone even here.
  const auto map = ramp_map();
  for (std::size_t i = 1; i < m.swr_regions().size(); ++i) {
    EXPECT_LE(map->region_endurance(m.swr_regions()[i - 1]),
              map->region_endurance(m.swr_regions()[i]));
  }
  // The scheme still functions end to end.
  EXPECT_TRUE(m.on_wear_out(0));
}

TEST(MaxWeAblationTest, IdentityMatchingPairsInLikeOrder) {
  MaxWeParams p = params();
  p.matching = MatchingPolicy::kIdentity;
  MaxWe m(ramp_map(), p);
  // Weakest RWR (6) <- weakest SWR (0), strongest RWR (11) <- SWR 5.
  EXPECT_EQ(m.rmt().spare_of(RegionId{6}), RegionId{0});
  EXPECT_EQ(m.rmt().spare_of(RegionId{11}), RegionId{5});
}

TEST(MaxWeTest, PaperDefaultsOnPaperGeometry) {
  // 1 GB / 2048 regions with 10% spares and 90% SWRs: 205 spare regions,
  // 185 SWRs (llround(184.5) rounds half away from zero), 20 ASRs.
  Rng rng(1);
  const EnduranceModel model;
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::paper_1gb(), model, rng));
  MaxWe m(map, MaxWeParams{});
  EXPECT_EQ(m.swr_regions().size() + m.asr_regions().size(), 205u);
  EXPECT_EQ(m.swr_regions().size(), 185u);
  EXPECT_EQ(m.working_lines(), (2048u - 205u) * 2048u);
  EXPECT_EQ(m.rmt().size(), 185u);
}

}  // namespace
}  // namespace nvmsec
