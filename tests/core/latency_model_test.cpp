#include "core/latency_model.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

TEST(LatencyModelTest, Validation) {
  LatencyModelParams p;
  p.array_read_ns = 0;
  EXPECT_THROW(table_translation_latency(p), std::invalid_argument);
  p = {};
  p.sram_lookup_ns = -1;
  EXPECT_THROW(table_translation_latency(p), std::invalid_argument);
  EXPECT_THROW(pointer_chain_latency({}, -0.5), std::invalid_argument);
}

TEST(LatencyModelTest, TableTranslationAddsOneSramLookup) {
  LatencyModelParams p;
  p.array_read_ns = 50;
  p.sram_lookup_ns = 2;
  const TranslationLatency t = table_translation_latency(p);
  EXPECT_DOUBLE_EQ(t.mean_access_ns, 52.0);
  EXPECT_DOUBLE_EQ(t.translation_ns, 2.0);
  EXPECT_DOUBLE_EQ(t.relative, 1.04);
}

TEST(LatencyModelTest, PointerChainScalesWithHops) {
  LatencyModelParams p;
  p.array_read_ns = 50;
  const TranslationLatency none = pointer_chain_latency(p, 0.0);
  EXPECT_DOUBLE_EQ(none.mean_access_ns, 50.0);
  EXPECT_DOUBLE_EQ(none.relative, 1.0);
  const TranslationLatency two = pointer_chain_latency(p, 2.0);
  EXPECT_DOUBLE_EQ(two.mean_access_ns, 150.0);
  EXPECT_DOUBLE_EQ(two.relative, 3.0);
}

TEST(LatencyModelTest, SramBeatsEvenFractionalHops) {
  // The paper's SRAM-table argument: a table lookup is cheaper than any
  // realistic mean pointer-walk once a meaningful fraction of lines has
  // been remapped.
  LatencyModelParams p;
  const double table = table_translation_latency(p).mean_access_ns;
  const double chain = pointer_chain_latency(p, 0.05).mean_access_ns;
  EXPECT_LT(table, chain);
}

}  // namespace
}  // namespace nvmsec
