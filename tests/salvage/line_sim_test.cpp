#include "salvage/line_sim.h"

#include <gtest/gtest.h>

namespace nvmsec {
namespace {

LineSimConfig fast_config(std::uint32_t ecp_entries = 0) {
  LineSimConfig c;
  c.cell_endurance_mean = 500.0;  // tiny, for fast tests
  c.cell_endurance_sigma = 0.1;
  c.ecp_entries = ecp_entries;
  return c;
}

TEST(LineSimTest, ConfigValidation) {
  auto codec = make_full_write_codec();
  auto payload = make_random_payload();
  Rng rng(1);
  LineSimConfig c = fast_config();
  c.cell_endurance_mean = 0;
  EXPECT_THROW(simulate_line_lifetime(*codec, *payload, c, rng),
               std::invalid_argument);
  c = fast_config();
  c.cell_endurance_sigma = -1;
  EXPECT_THROW(simulate_line_lifetime(*codec, *payload, c, rng),
               std::invalid_argument);
  EXPECT_THROW(average_line_lifetime(*codec, *payload, fast_config(), rng, 0),
               std::invalid_argument);
}

TEST(LineSimTest, FullWriteDiesNearCellEndurance) {
  // Every cell is programmed every write, so the line dies when its weakest
  // cell does: a bit under the mean endurance.
  auto codec = make_full_write_codec();
  auto payload = make_random_payload();
  Rng rng(2);
  const LineSimResult r =
      simulate_line_lifetime(*codec, *payload, fast_config(), rng);
  EXPECT_FALSE(r.hit_cap);
  EXPECT_EQ(r.cells_failed, 1u);
  EXPECT_GT(r.writes_to_failure, 200u);
  EXPECT_LT(r.writes_to_failure, 500u);
  EXPECT_DOUBLE_EQ(r.avg_cells_programmed, 512.0);
}

TEST(LineSimTest, ConstantPayloadNeverWearsDifferentialLine) {
  auto codec = make_differential_write_codec();
  auto payload = make_constant_payload(0);
  Rng rng(3);
  LineSimConfig c = fast_config();
  c.max_writes = 5000;
  const LineSimResult r = simulate_line_lifetime(*codec, *payload, c, rng);
  EXPECT_TRUE(r.hit_cap);
  EXPECT_EQ(r.cells_failed, 0u);
  EXPECT_EQ(r.writes_to_failure, 5000u);
}

TEST(LineSimTest, DifferentialOutlivesFullWriteOnRandomData) {
  // Random data flips ~half the cells per write, so differential write
  // roughly doubles the line lifetime versus always-program.
  Rng rng(4);
  auto payload = make_random_payload();
  auto full = make_full_write_codec();
  auto diff = make_differential_write_codec();
  const auto r_full =
      average_line_lifetime(*full, *payload, fast_config(), rng, 10);
  const auto r_diff =
      average_line_lifetime(*diff, *payload, fast_config(), rng, 10);
  const double ratio = static_cast<double>(r_diff.writes_to_failure) /
                       static_cast<double>(r_full.writes_to_failure);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.6);
}

TEST(LineSimTest, FnwDoublesDifferentialOnComplementData) {
  // Alternating complement data: differential pays every cell every write;
  // FNW pays only flag bits (which are 8 cells worn every write, so the
  // flags become the bottleneck — still a big win).
  Rng rng(5);
  auto payload = make_complement_payload(0x0F0F0F0F0F0F0F0FULL);
  auto fnw = make_flip_n_write_codec();
  auto diff = make_differential_write_codec();
  const auto r_diff =
      average_line_lifetime(*diff, *payload, fast_config(), rng, 10);
  const auto r_fnw =
      average_line_lifetime(*fnw, *payload, fast_config(), rng, 10);
  EXPECT_GT(r_fnw.writes_to_failure, r_diff.writes_to_failure);
}

TEST(LineSimTest, AdversarialPatternNullifiesFnw) {
  // §3.3.2: under the 0x0000/0x5555 alternation FNW loses its advantage
  // entirely — its lifetime matches plain differential write.
  Rng rng(6);
  auto payload = make_fnw_adversarial_payload();
  auto fnw = make_flip_n_write_codec();
  auto diff = make_differential_write_codec();
  const auto r_diff =
      average_line_lifetime(*diff, *payload, fast_config(), rng, 10);
  const auto r_fnw =
      average_line_lifetime(*fnw, *payload, fast_config(), rng, 10);
  const double ratio = static_cast<double>(r_fnw.writes_to_failure) /
                       static_cast<double>(r_diff.writes_to_failure);
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

class EcpEntriesTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EcpEntriesTest, MoreEntriesMeanLongerLifetime) {
  Rng rng(7);
  auto payload = make_random_payload();
  auto codec = make_full_write_codec();
  const auto base =
      average_line_lifetime(*codec, *payload, fast_config(0), rng, 8);
  const auto with_ecp =
      average_line_lifetime(*codec, *payload, fast_config(GetParam()), rng, 8);
  EXPECT_GT(with_ecp.writes_to_failure, base.writes_to_failure);
  EXPECT_EQ(with_ecp.cells_failed, GetParam() + 1);
}

INSTANTIATE_TEST_SUITE_P(EntryCounts, EcpEntriesTest,
                         ::testing::Values(1u, 2u, 6u, 16u));

TEST(LineSimTest, EcpGainIsBoundedUnderUniformStress) {
  // §2.2.2's critique, measured: under always-program stress the k-entry
  // gain is the gap between the weakest and the (k+1)-weakest cell — a few
  // percent, nothing like a spare-line scheme's multiples.
  Rng rng(8);
  auto payload = make_random_payload();
  auto codec = make_full_write_codec();
  const auto base =
      average_line_lifetime(*codec, *payload, fast_config(0), rng, 10);
  const auto ecp6 =
      average_line_lifetime(*codec, *payload, fast_config(6), rng, 10);
  const double gain = static_cast<double>(ecp6.writes_to_failure) /
                      static_cast<double>(base.writes_to_failure);
  EXPECT_GT(gain, 1.0);
  EXPECT_LT(gain, 1.5);
}

}  // namespace
}  // namespace nvmsec
