#include "reduction/codec.h"

#include <gtest/gtest.h>

#include "reduction/payload.h"

namespace nvmsec {
namespace {

TEST(LineDataTest, HammingAndPopcount) {
  LineData a = LineData::filled(0);
  LineData b = LineData::filled(0x5555555555555555ULL);
  EXPECT_EQ(a.hamming_distance(b), 256u);
  EXPECT_EQ(b.popcount(), 256u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
  EXPECT_EQ(b.inverted().popcount(), 256u);
  EXPECT_EQ(a.inverted().popcount(), 512u);
}

TEST(LineDataTest, BitAccessor) {
  LineData x = LineData::filled(0x1);  // bit 0 of each word set
  EXPECT_TRUE(x.bit(0));
  EXPECT_FALSE(x.bit(1));
  EXPECT_TRUE(x.bit(64));
}

TEST(StoredLineTest, LogicalViewUndoesInversion) {
  StoredLine s;
  s.cells = LineData::filled(0xF0F0F0F0F0F0F0F0ULL);
  s.inverted[2] = true;
  const LineData logical = s.logical();
  EXPECT_EQ(logical.words[0], 0xF0F0F0F0F0F0F0F0ULL);
  EXPECT_EQ(logical.words[2], 0x0F0F0F0F0F0F0F0FULL);
}

TEST(FullWriteCodecTest, AlwaysProgramsEveryCell) {
  auto codec = make_full_write_codec();
  StoredLine s;
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const LineData d = LineData::random(rng);
    const WriteCost cost = codec->program(s, d);
    EXPECT_EQ(cost.cells_programmed, 512u);
    EXPECT_EQ(s.logical(), d);
  }
}

TEST(DifferentialCodecTest, ProgramsOnlyChangedCells) {
  auto codec = make_differential_write_codec();
  StoredLine s;
  const LineData a = LineData::filled(0xFF);
  EXPECT_EQ(codec->program(s, a).cells_programmed, 64u);  // 8 bits x 8 words
  EXPECT_EQ(codec->program(s, a).cells_programmed, 0u);   // identical rewrite
  LineData b = a;
  b.words[0] ^= 0b101;
  EXPECT_EQ(codec->program(s, b).cells_programmed, 2u);
  EXPECT_EQ(s.logical(), b);
}

TEST(FnwCodecTest, CapsFlipsAtHalfAWordPlusFlag) {
  auto codec = make_flip_n_write_codec();
  StoredLine s;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const LineData d = LineData::random(rng);
    const WriteCost cost = codec->program(s, d);
    EXPECT_LE(cost.cells_programmed, 8u * 32u);
    EXPECT_EQ(s.logical(), d) << "FNW must stay lossless";
  }
}

TEST(FnwCodecTest, ComplementPatternCostsOnlyFlags) {
  // Writing the exact complement flips every bit -> FNW just toggles the 8
  // flag bits and programs no data cells at all.
  auto codec = make_flip_n_write_codec();
  StoredLine s;
  const LineData a = LineData::filled(0xDEADBEEFDEADBEEFULL);
  codec->program(s, a);
  const WriteCost cost = codec->program(s, a.inverted());
  EXPECT_EQ(cost.cells_programmed, 0u);
  EXPECT_EQ(cost.flag_cells_programmed, 8u);
  EXPECT_EQ(s.logical(), a.inverted());
}

TEST(FnwCodecTest, BeatsDifferentialOnDenseFlips) {
  auto fnw = make_flip_n_write_codec();
  auto diff = make_differential_write_codec();
  StoredLine s_fnw, s_diff;
  // Alternate a pattern and its complement: differential pays 512 per
  // write, FNW pays 8 flags.
  auto payload = make_complement_payload(0xAAAAAAAAAAAAAAAAULL);
  Rng rng(3);
  payload->next(rng, LogicalLineAddr{0});  // warm-up value
  std::uint64_t fnw_total = 0, diff_total = 0;
  for (int i = 0; i < 20; ++i) {
    const LineData d = payload->next(rng, LogicalLineAddr{0});
    fnw_total += fnw->program(s_fnw, d).total();
    diff_total += diff->program(s_diff, d).total();
  }
  EXPECT_LT(fnw_total * 10, diff_total);
}

TEST(FnwCodecTest, AdversarialAlternationDefeatsIt) {
  // §3.3.2's attack: 0x0000 vs 0x5555 alternation is a permanent 32-flip
  // tie per word, so FNW degenerates to differential-write cost.
  auto fnw = make_flip_n_write_codec();
  auto diff = make_differential_write_codec();
  StoredLine s_fnw, s_diff;
  auto payload = make_fnw_adversarial_payload();
  Rng rng(4);
  std::uint64_t fnw_total = 0, diff_total = 0;
  for (int i = 0; i < 40; ++i) {
    const LineData d = payload->next(rng, LogicalLineAddr{0});
    fnw_total += fnw->program(s_fnw, d).total();
    diff_total += diff->program(s_diff, d).total();
  }
  EXPECT_EQ(fnw_total, diff_total);
  // And both sit at half the line per write after warm-up.
  EXPECT_GE(fnw_total, 39u * 256u);
}

TEST(PayloadTest, ModelsBehaveAsDocumented) {
  Rng rng(5);
  auto rnd = make_random_payload();
  EXPECT_NE(rnd->next(rng, LogicalLineAddr{0}), rnd->next(rng, LogicalLineAddr{0}));

  auto constant = make_constant_payload(7);
  EXPECT_EQ(constant->next(rng, LogicalLineAddr{0}), constant->next(rng, LogicalLineAddr{0}));

  auto adv = make_fnw_adversarial_payload();
  const LineData first = adv->next(rng, LogicalLineAddr{0});
  const LineData second = adv->next(rng, LogicalLineAddr{0});
  EXPECT_EQ(first.hamming_distance(second), 256u);
  adv->reset();
  EXPECT_EQ(adv->next(rng, LogicalLineAddr{0}), first);

  auto comp = make_complement_payload(0);
  EXPECT_EQ(comp->next(rng, LogicalLineAddr{0}).hamming_distance(comp->next(rng, LogicalLineAddr{0})), 512u);
}

TEST(PayloadTest, FactoryNames) {
  for (const std::string name :
       {"random", "constant", "fnw-adversarial", "complement"}) {
    EXPECT_NE(make_payload(name), nullptr);
  }
  EXPECT_THROW(make_payload("nope"), std::invalid_argument);
  EXPECT_THROW(make_codec("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace nvmsec
