// Unit tests for the streaming attack detector: signal math on canonical
// traffic shapes, the hysteresis state machine, per-write vs. batched-run
// observation equivalence (the property that keeps event logs byte-
// identical across fastpath on/off), and checkpoint state round trips.
#include "detect/detector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "util/rng.h"
#include "util/serialize.h"

namespace nvmsec {
namespace {

constexpr std::uint64_t kLines = 1024;

DetectorParams small_params() {
  DetectorParams p;
  p.window_writes = 2048;
  p.coarse_buckets = 32;
  p.fine_buckets = 256;
  return p;
}

/// Feed one full window of a contiguous sweep (UAA shape).
void feed_sweep_window(AttackDetector& d) {
  for (std::uint64_t i = 0; i < 2048; ++i) d.observe(i % kLines);
}

/// Feed one full window hammering a single line (BPA/hotspot shape).
void feed_hammer_window(AttackDetector& d) {
  for (std::uint64_t i = 0; i < 2048; ++i) d.observe(17);
}

/// Feed one full window of scattered pseudo-random traffic (benign shape).
void feed_benign_window(AttackDetector& d, Rng& rng) {
  for (std::uint64_t i = 0; i < 2048; ++i) {
    d.observe(rng.uniform_u64(kLines));
  }
}

TEST(AttackDetectorTest, ConstructionValidation) {
  DetectorParams p = small_params();
  p.window_writes = 0;
  EXPECT_THROW(AttackDetector(p, kLines), std::invalid_argument);
  p = small_params();
  p.coarse_buckets = 0;
  EXPECT_THROW(AttackDetector(p, kLines), std::invalid_argument);
  p = small_params();
  p.fine_buckets = 0;
  EXPECT_THROW(AttackDetector(p, kLines), std::invalid_argument);
  EXPECT_THROW(AttackDetector(small_params(), 0), std::invalid_argument);
}

TEST(AttackDetectorTest, BucketResolutionClampedToAddressSpace) {
  DetectorParams p = small_params();
  p.coarse_buckets = 4096;
  p.fine_buckets = 4096;
  const AttackDetector d(p, 16);
  EXPECT_EQ(d.params().coarse_buckets, 16u);
  EXPECT_EQ(d.params().fine_buckets, 16u);
}

TEST(AttackDetectorTest, SweepWindowIsSweepAnomalous) {
  AttackDetector d(small_params(), kLines);
  feed_sweep_window(d);
  const WindowVerdict v = d.close_window();
  EXPECT_TRUE(v.anomalous);
  EXPECT_EQ(v.kind, AttackKind::kSweep);
  // A contiguous sweep is almost perfectly sequential and touches every
  // fine bucket.
  EXPECT_GT(v.sequential, 0.9);
  EXPECT_GT(v.occupancy, 0.9);
}

TEST(AttackDetectorTest, HammerWindowIsConcentrationAnomalous) {
  AttackDetector d(small_params(), kLines);
  feed_hammer_window(d);
  const WindowVerdict v = d.close_window();
  EXPECT_TRUE(v.anomalous);
  EXPECT_EQ(v.kind, AttackKind::kConcentration);
  // One line touched => one fine bucket of the 256 reachable.
  EXPECT_LT(v.occupancy, 0.01);
}

TEST(AttackDetectorTest, ScatteredTrafficIsNormal) {
  AttackDetector d(small_params(), kLines);
  Rng rng(7);
  feed_benign_window(d, rng);
  const WindowVerdict v = d.close_window();
  EXPECT_FALSE(v.anomalous);
  EXPECT_EQ(v.kind, AttackKind::kNone);
  // i.i.d. uniform traffic: the normalized chi-square concentrates near 1.
  EXPECT_GT(v.uniformity, 0.5);
  EXPECT_LT(v.uniformity, 2.0);
}

TEST(AttackDetectorTest, EmptyWindowIsNormal) {
  AttackDetector d(small_params(), kLines);
  const WindowVerdict v = d.close_window();
  EXPECT_FALSE(v.anomalous);
  EXPECT_EQ(v.writes, 0u);
  EXPECT_EQ(d.level(), AlarmLevel::kBenign);
}

TEST(AttackDetectorTest, HysteresisRaisesAfterConsecutiveAnomalies) {
  AttackDetector d(small_params(), kLines);  // raise_windows = 2
  feed_sweep_window(d);
  d.close_window();
  EXPECT_EQ(d.level(), AlarmLevel::kSuspicious);
  feed_sweep_window(d);
  d.close_window();
  EXPECT_EQ(d.level(), AlarmLevel::kUnderAttack);
  EXPECT_EQ(d.kind(), AttackKind::kSweep);
  EXPECT_EQ(d.alarms_raised(), 1u);
}

TEST(AttackDetectorTest, SingleNormalWindowKillsPendingRaise) {
  AttackDetector d(small_params(), kLines);
  Rng rng(11);
  feed_sweep_window(d);
  d.close_window();
  ASSERT_EQ(d.level(), AlarmLevel::kSuspicious);
  feed_benign_window(d, rng);
  d.close_window();
  EXPECT_EQ(d.level(), AlarmLevel::kBenign);
  EXPECT_EQ(d.kind(), AttackKind::kNone);
  EXPECT_EQ(d.alarms_raised(), 0u);
}

TEST(AttackDetectorTest, AlarmClearsOnlyAfterClearWindows) {
  AttackDetector d(small_params(), kLines);  // clear_windows = 4
  Rng rng(13);
  feed_sweep_window(d);
  d.close_window();
  feed_sweep_window(d);
  d.close_window();
  ASSERT_EQ(d.level(), AlarmLevel::kUnderAttack);
  for (int i = 0; i < 3; ++i) {
    feed_benign_window(d, rng);
    d.close_window();
    EXPECT_EQ(d.level(), AlarmLevel::kUnderAttack) << "after " << i + 1;
  }
  feed_benign_window(d, rng);
  d.close_window();
  EXPECT_EQ(d.level(), AlarmLevel::kBenign);
  // The raise window + 3 benign windows closed while still in alarm (the
  // 4th clears the level before the stat is taken).
  EXPECT_EQ(d.windows_in_alarm(), 4u);
}

TEST(AttackDetectorTest, WindowClockCapsAtBoundaries) {
  AttackDetector d(small_params(), kLines);
  EXPECT_FALSE(d.window_due(0));
  EXPECT_EQ(d.writes_until_window(0), 2048u);
  EXPECT_EQ(d.writes_until_window(2000), 48u);
  EXPECT_TRUE(d.window_due(2048));
  EXPECT_EQ(d.writes_until_window(2048), 0u);
  d.close_window();
  EXPECT_FALSE(d.window_due(2048));
  EXPECT_EQ(d.writes_until_window(2048), 2048u);
  // Boundaries are absolute multiples: a jump past several boundaries
  // leaves the window due until each one is drained.
  EXPECT_TRUE(d.window_due(3 * 2048));
  d.close_window();
  EXPECT_TRUE(d.window_due(3 * 2048));
}

TEST(AttackDetectorTest, RunObservationMatchesPerWriteExactly) {
  AttackDetector per_write(small_params(), kLines);
  AttackDetector runs(small_params(), kLines);

  // Sweep segment (stride 1), then a hammered address (stride 0), then a
  // strided scatter — the three run shapes the fast path emits.
  for (std::uint64_t i = 0; i < 700; ++i) per_write.observe(100 + i);
  runs.observe_run(100, 700, 1);
  for (std::uint64_t i = 0; i < 600; ++i) per_write.observe(42);
  runs.observe_run(42, 600, 0);
  for (std::uint64_t i = 0; i < 100; ++i) per_write.observe(3 + i * 7);
  runs.observe_run(3, 100, 7);

  const WindowVerdict a = per_write.close_window();
  const WindowVerdict b = runs.close_window();
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.uniformity, b.uniformity);  // bit-exact, not approximate
  EXPECT_EQ(a.occupancy, b.occupancy);
  EXPECT_EQ(a.sequential, b.sequential);
  EXPECT_EQ(a.anomalous, b.anomalous);
  EXPECT_EQ(a.kind, b.kind);

  // The serialized states must agree byte for byte: this is what makes
  // detector checkpoints interchangeable across fastpath on/off for
  // bit-identical attacks.
  StateWriter wa, wb;
  per_write.save_state(wa);
  runs.save_state(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

TEST(AttackDetectorTest, RunSpanningBucketBoundariesMatchesPerWrite) {
  // Address space not divisible by the bucket counts: the analytic range
  // update must agree with per-write adds on the ragged bucket edges.
  DetectorParams p = small_params();
  p.coarse_buckets = 7;
  p.fine_buckets = 13;
  AttackDetector per_write(p, 999);
  AttackDetector runs(p, 999);
  for (std::uint64_t i = 0; i < 999; ++i) per_write.observe(i);
  runs.observe_run(0, 999, 1);
  const WindowVerdict a = per_write.close_window();
  const WindowVerdict b = runs.close_window();
  EXPECT_EQ(a.uniformity, b.uniformity);
  EXPECT_EQ(a.occupancy, b.occupancy);
  EXPECT_EQ(a.sequential, b.sequential);
}

TEST(AttackDetectorTest, CountVectorResetsSequentialTracking) {
  AttackDetector d(small_params(), kLines);
  d.observe(10);
  WriteCountVector counts;
  counts.addrs = {11, 500};
  counts.counts = {1, 3};
  d.observe_counts(counts);
  // A multinomial chunk is an unordered multiset: address 11 right after
  // 10 must NOT count as a sequential step, and neither must the next
  // per-write observation (the chain restarts).
  d.observe(501);
  const WindowVerdict v = d.close_window();
  EXPECT_EQ(v.writes, 6u);
  EXPECT_EQ(v.sequential, 0.0);
}

TEST(AttackDetectorTest, StateRoundTripsMidWindow) {
  AttackDetector d(small_params(), kLines);
  Rng rng(5);
  // Commit some history (one alarm raise) plus a half-filled window.
  feed_sweep_window(d);
  d.close_window();
  feed_sweep_window(d);
  d.close_window();
  for (std::uint64_t i = 0; i < 1000; ++i) d.observe(i);

  StateWriter w;
  d.save_state(w);
  AttackDetector restored(small_params(), kLines);
  StateReader r(w.buffer());
  ASSERT_TRUE(restored.load_state(r).ok());
  EXPECT_TRUE(r.exhausted());

  // Both copies must agree on the next verdict and all running stats.
  for (std::uint64_t i = 1000; i < 2048; ++i) {
    d.observe(i % kLines);
    restored.observe(i % kLines);
  }
  const WindowVerdict a = d.close_window();
  const WindowVerdict b = restored.close_window();
  EXPECT_EQ(a.uniformity, b.uniformity);
  EXPECT_EQ(a.sequential, b.sequential);
  EXPECT_EQ(a.level_after, b.level_after);
  EXPECT_EQ(d.alarms_raised(), restored.alarms_raised());
  EXPECT_EQ(d.windows_in_alarm(), restored.windows_in_alarm());
  EXPECT_EQ(d.windows_closed(), restored.windows_closed());
}

TEST(AttackDetectorTest, LoadRejectsResolutionMismatch) {
  AttackDetector d(small_params(), kLines);
  StateWriter w;
  d.save_state(w);
  DetectorParams other = small_params();
  other.coarse_buckets = 16;
  AttackDetector mismatched(other, kLines);
  StateReader r(w.buffer());
  EXPECT_FALSE(mismatched.load_state(r).ok());
}

}  // namespace
}  // namespace nvmsec
