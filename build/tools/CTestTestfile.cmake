# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_maxwe_sim_help "/root/repo/build/tools/maxwe_sim" "--help")
set_tests_properties(tool_maxwe_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_maxwe_sim_event_run "/root/repo/build/tools/maxwe_sim" "--lines" "2048" "--regions" "128" "--endurance-mean" "1000" "--spare" "maxwe")
set_tests_properties(tool_maxwe_sim_event_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_maxwe_sim_stochastic_run "/root/repo/build/tools/maxwe_sim" "--mode" "stochastic" "--lines" "512" "--regions" "32" "--endurance-mean" "1000" "--attack" "bpa" "--wl" "tlsr" "--spare" "ps")
set_tests_properties(tool_maxwe_sim_stochastic_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_maxwe_sim_bit_run "/root/repo/build/tools/maxwe_sim" "--mode" "bit" "--lines" "256" "--regions" "16" "--endurance-mean" "300" "--codec" "fnw" "--ecp" "2" "--spare" "maxwe" "--spare-fraction" "0.25" "--swr-fraction" "0.5")
set_tests_properties(tool_maxwe_sim_bit_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_maxwe_sim_bad_flag "/root/repo/build/tools/maxwe_sim" "--bogus")
set_tests_properties(tool_maxwe_sim_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_maxwe_sim_map_roundtrip "/usr/bin/cmake" "-DTOOL=/root/repo/build/tools/maxwe_sim" "-DWORK_DIR=/root/repo/build/tools" "-P" "/root/repo/tools/map_roundtrip_test.cmake")
set_tests_properties(tool_maxwe_sim_map_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
