file(REMOVE_RECURSE
  "CMakeFiles/maxwe_sim.dir/maxwe_sim.cpp.o"
  "CMakeFiles/maxwe_sim.dir/maxwe_sim.cpp.o.d"
  "maxwe_sim"
  "maxwe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxwe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
