# Empty dependencies file for maxwe_sim.
# This may be replaced when dependencies are built.
