file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multi_bank.dir/bench_ext_multi_bank.cpp.o"
  "CMakeFiles/bench_ext_multi_bank.dir/bench_ext_multi_bank.cpp.o.d"
  "bench_ext_multi_bank"
  "bench_ext_multi_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
