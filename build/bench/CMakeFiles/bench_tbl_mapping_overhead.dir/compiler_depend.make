# Empty compiler generated dependencies file for bench_tbl_mapping_overhead.
# This may be replaced when dependencies are built.
