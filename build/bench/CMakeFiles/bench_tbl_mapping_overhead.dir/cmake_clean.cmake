file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl_mapping_overhead.dir/bench_tbl_mapping_overhead.cpp.o"
  "CMakeFiles/bench_tbl_mapping_overhead.dir/bench_tbl_mapping_overhead.cpp.o.d"
  "bench_tbl_mapping_overhead"
  "bench_tbl_mapping_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl_mapping_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
