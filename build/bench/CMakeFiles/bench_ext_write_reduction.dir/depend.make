# Empty dependencies file for bench_ext_write_reduction.
# This may be replaced when dependencies are built.
