file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_write_reduction.dir/bench_ext_write_reduction.cpp.o"
  "CMakeFiles/bench_ext_write_reduction.dir/bench_ext_write_reduction.cpp.o.d"
  "bench_ext_write_reduction"
  "bench_ext_write_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_write_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
