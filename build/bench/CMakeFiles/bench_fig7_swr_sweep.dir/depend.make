# Empty dependencies file for bench_fig7_swr_sweep.
# This may be replaced when dependencies are built.
