# Empty dependencies file for bench_ext_freep.
# This may be replaced when dependencies are built.
