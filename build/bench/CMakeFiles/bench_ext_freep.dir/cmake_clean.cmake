file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_freep.dir/bench_ext_freep.cpp.o"
  "CMakeFiles/bench_ext_freep.dir/bench_ext_freep.cpp.o.d"
  "bench_ext_freep"
  "bench_ext_freep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_freep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
