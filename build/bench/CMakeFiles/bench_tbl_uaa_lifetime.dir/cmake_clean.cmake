file(REMOVE_RECURSE
  "CMakeFiles/bench_tbl_uaa_lifetime.dir/bench_tbl_uaa_lifetime.cpp.o"
  "CMakeFiles/bench_tbl_uaa_lifetime.dir/bench_tbl_uaa_lifetime.cpp.o.d"
  "bench_tbl_uaa_lifetime"
  "bench_tbl_uaa_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tbl_uaa_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
