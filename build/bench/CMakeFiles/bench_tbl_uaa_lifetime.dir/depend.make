# Empty dependencies file for bench_tbl_uaa_lifetime.
# This may be replaced when dependencies are built.
