file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dram_buffer.dir/bench_ext_dram_buffer.cpp.o"
  "CMakeFiles/bench_ext_dram_buffer.dir/bench_ext_dram_buffer.cpp.o.d"
  "bench_ext_dram_buffer"
  "bench_ext_dram_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dram_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
