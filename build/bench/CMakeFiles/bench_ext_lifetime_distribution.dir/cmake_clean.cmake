file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lifetime_distribution.dir/bench_ext_lifetime_distribution.cpp.o"
  "CMakeFiles/bench_ext_lifetime_distribution.dir/bench_ext_lifetime_distribution.cpp.o.d"
  "bench_ext_lifetime_distribution"
  "bench_ext_lifetime_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lifetime_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
