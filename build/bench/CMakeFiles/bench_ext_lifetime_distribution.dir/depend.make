# Empty dependencies file for bench_ext_lifetime_distribution.
# This may be replaced when dependencies are built.
