file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_translate.dir/bench_micro_translate.cpp.o"
  "CMakeFiles/bench_micro_translate.dir/bench_micro_translate.cpp.o.d"
  "bench_micro_translate"
  "bench_micro_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
