# Empty compiler generated dependencies file for bench_fig5_analytic_surface.
# This may be replaced when dependencies are built.
