# Empty dependencies file for bench_fig1_uaa_baseline.
# This may be replaced when dependencies are built.
