file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_strategies.dir/bench_abl_strategies.cpp.o"
  "CMakeFiles/bench_abl_strategies.dir/bench_abl_strategies.cpp.o.d"
  "bench_abl_strategies"
  "bench_abl_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
