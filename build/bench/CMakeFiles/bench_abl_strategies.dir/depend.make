# Empty dependencies file for bench_abl_strategies.
# This may be replaced when dependencies are built.
