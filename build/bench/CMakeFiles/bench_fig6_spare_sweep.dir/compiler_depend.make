# Empty compiler generated dependencies file for bench_fig6_spare_sweep.
# This may be replaced when dependencies are built.
