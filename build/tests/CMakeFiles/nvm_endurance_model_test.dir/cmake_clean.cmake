file(REMOVE_RECURSE
  "CMakeFiles/nvm_endurance_model_test.dir/nvm/endurance_model_test.cpp.o"
  "CMakeFiles/nvm_endurance_model_test.dir/nvm/endurance_model_test.cpp.o.d"
  "nvm_endurance_model_test"
  "nvm_endurance_model_test.pdb"
  "nvm_endurance_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_endurance_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
