# Empty compiler generated dependencies file for nvm_endurance_map_test.
# This may be replaced when dependencies are built.
