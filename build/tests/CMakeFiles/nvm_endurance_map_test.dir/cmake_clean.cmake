file(REMOVE_RECURSE
  "CMakeFiles/nvm_endurance_map_test.dir/nvm/endurance_map_test.cpp.o"
  "CMakeFiles/nvm_endurance_map_test.dir/nvm/endurance_map_test.cpp.o.d"
  "nvm_endurance_map_test"
  "nvm_endurance_map_test.pdb"
  "nvm_endurance_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_endurance_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
