file(REMOVE_RECURSE
  "CMakeFiles/core_mapping_tables_test.dir/core/mapping_tables_test.cpp.o"
  "CMakeFiles/core_mapping_tables_test.dir/core/mapping_tables_test.cpp.o.d"
  "core_mapping_tables_test"
  "core_mapping_tables_test.pdb"
  "core_mapping_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mapping_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
