file(REMOVE_RECURSE
  "CMakeFiles/attack_trace_test.dir/attack/trace_test.cpp.o"
  "CMakeFiles/attack_trace_test.dir/attack/trace_test.cpp.o.d"
  "attack_trace_test"
  "attack_trace_test.pdb"
  "attack_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
