# Empty compiler generated dependencies file for attack_trace_test.
# This may be replaced when dependencies are built.
