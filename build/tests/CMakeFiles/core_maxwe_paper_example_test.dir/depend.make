# Empty dependencies file for core_maxwe_paper_example_test.
# This may be replaced when dependencies are built.
