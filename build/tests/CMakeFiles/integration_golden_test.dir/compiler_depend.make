# Empty compiler generated dependencies file for integration_golden_test.
# This may be replaced when dependencies are built.
