# Empty compiler generated dependencies file for cache_dram_buffer_test.
# This may be replaced when dependencies are built.
