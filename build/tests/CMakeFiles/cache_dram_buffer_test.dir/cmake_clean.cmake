file(REMOVE_RECURSE
  "CMakeFiles/cache_dram_buffer_test.dir/cache/dram_buffer_test.cpp.o"
  "CMakeFiles/cache_dram_buffer_test.dir/cache/dram_buffer_test.cpp.o.d"
  "cache_dram_buffer_test"
  "cache_dram_buffer_test.pdb"
  "cache_dram_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_dram_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
