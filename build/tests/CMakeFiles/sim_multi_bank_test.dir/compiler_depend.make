# Empty compiler generated dependencies file for sim_multi_bank_test.
# This may be replaced when dependencies are built.
