file(REMOVE_RECURSE
  "CMakeFiles/sim_multi_bank_test.dir/sim/multi_bank_test.cpp.o"
  "CMakeFiles/sim_multi_bank_test.dir/sim/multi_bank_test.cpp.o.d"
  "sim_multi_bank_test"
  "sim_multi_bank_test.pdb"
  "sim_multi_bank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_multi_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
