file(REMOVE_RECURSE
  "CMakeFiles/wearlevel_basic_test.dir/wearlevel/basic_test.cpp.o"
  "CMakeFiles/wearlevel_basic_test.dir/wearlevel/basic_test.cpp.o.d"
  "wearlevel_basic_test"
  "wearlevel_basic_test.pdb"
  "wearlevel_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlevel_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
