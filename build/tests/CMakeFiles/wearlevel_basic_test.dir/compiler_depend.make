# Empty compiler generated dependencies file for wearlevel_basic_test.
# This may be replaced when dependencies are built.
