file(REMOVE_RECURSE
  "CMakeFiles/salvage_line_sim_test.dir/salvage/line_sim_test.cpp.o"
  "CMakeFiles/salvage_line_sim_test.dir/salvage/line_sim_test.cpp.o.d"
  "salvage_line_sim_test"
  "salvage_line_sim_test.pdb"
  "salvage_line_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salvage_line_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
