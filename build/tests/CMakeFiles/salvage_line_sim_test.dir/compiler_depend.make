# Empty compiler generated dependencies file for salvage_line_sim_test.
# This may be replaced when dependencies are built.
