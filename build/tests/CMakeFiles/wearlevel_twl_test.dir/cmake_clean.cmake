file(REMOVE_RECURSE
  "CMakeFiles/wearlevel_twl_test.dir/wearlevel/twl_test.cpp.o"
  "CMakeFiles/wearlevel_twl_test.dir/wearlevel/twl_test.cpp.o.d"
  "wearlevel_twl_test"
  "wearlevel_twl_test.pdb"
  "wearlevel_twl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlevel_twl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
