# Empty dependencies file for wearlevel_twl_test.
# This may be replaced when dependencies are built.
