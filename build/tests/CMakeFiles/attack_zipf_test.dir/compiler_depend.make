# Empty compiler generated dependencies file for attack_zipf_test.
# This may be replaced when dependencies are built.
