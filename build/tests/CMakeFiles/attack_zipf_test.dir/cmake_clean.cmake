file(REMOVE_RECURSE
  "CMakeFiles/attack_zipf_test.dir/attack/zipf_test.cpp.o"
  "CMakeFiles/attack_zipf_test.dir/attack/zipf_test.cpp.o.d"
  "attack_zipf_test"
  "attack_zipf_test.pdb"
  "attack_zipf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_zipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
