file(REMOVE_RECURSE
  "CMakeFiles/core_maxwe_test.dir/core/maxwe_test.cpp.o"
  "CMakeFiles/core_maxwe_test.dir/core/maxwe_test.cpp.o.d"
  "core_maxwe_test"
  "core_maxwe_test.pdb"
  "core_maxwe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_maxwe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
