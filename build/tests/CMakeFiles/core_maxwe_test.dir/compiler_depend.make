# Empty compiler generated dependencies file for core_maxwe_test.
# This may be replaced when dependencies are built.
