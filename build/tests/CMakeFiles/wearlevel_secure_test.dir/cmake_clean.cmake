file(REMOVE_RECURSE
  "CMakeFiles/wearlevel_secure_test.dir/wearlevel/secure_test.cpp.o"
  "CMakeFiles/wearlevel_secure_test.dir/wearlevel/secure_test.cpp.o.d"
  "wearlevel_secure_test"
  "wearlevel_secure_test.pdb"
  "wearlevel_secure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlevel_secure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
