# Empty compiler generated dependencies file for wearlevel_secure_test.
# This may be replaced when dependencies are built.
