# Empty dependencies file for nvm_geometry_test.
# This may be replaced when dependencies are built.
