file(REMOVE_RECURSE
  "CMakeFiles/nvm_geometry_test.dir/nvm/geometry_test.cpp.o"
  "CMakeFiles/nvm_geometry_test.dir/nvm/geometry_test.cpp.o.d"
  "nvm_geometry_test"
  "nvm_geometry_test.pdb"
  "nvm_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
