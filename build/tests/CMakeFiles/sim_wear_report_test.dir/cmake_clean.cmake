file(REMOVE_RECURSE
  "CMakeFiles/sim_wear_report_test.dir/sim/wear_report_test.cpp.o"
  "CMakeFiles/sim_wear_report_test.dir/sim/wear_report_test.cpp.o.d"
  "sim_wear_report_test"
  "sim_wear_report_test.pdb"
  "sim_wear_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_wear_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
