# Empty dependencies file for sim_bit_engine_test.
# This may be replaced when dependencies are built.
