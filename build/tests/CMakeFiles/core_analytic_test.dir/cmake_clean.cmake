file(REMOVE_RECURSE
  "CMakeFiles/core_analytic_test.dir/core/analytic_test.cpp.o"
  "CMakeFiles/core_analytic_test.dir/core/analytic_test.cpp.o.d"
  "core_analytic_test"
  "core_analytic_test.pdb"
  "core_analytic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_analytic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
