file(REMOVE_RECURSE
  "CMakeFiles/reduction_codec_test.dir/reduction/codec_test.cpp.o"
  "CMakeFiles/reduction_codec_test.dir/reduction/codec_test.cpp.o.d"
  "reduction_codec_test"
  "reduction_codec_test.pdb"
  "reduction_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
