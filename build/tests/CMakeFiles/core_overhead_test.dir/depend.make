# Empty dependencies file for core_overhead_test.
# This may be replaced when dependencies are built.
