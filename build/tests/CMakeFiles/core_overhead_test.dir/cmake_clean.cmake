file(REMOVE_RECURSE
  "CMakeFiles/core_overhead_test.dir/core/overhead_test.cpp.o"
  "CMakeFiles/core_overhead_test.dir/core/overhead_test.cpp.o.d"
  "core_overhead_test"
  "core_overhead_test.pdb"
  "core_overhead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_overhead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
