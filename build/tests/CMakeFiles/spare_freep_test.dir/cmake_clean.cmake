file(REMOVE_RECURSE
  "CMakeFiles/spare_freep_test.dir/spare/freep_test.cpp.o"
  "CMakeFiles/spare_freep_test.dir/spare/freep_test.cpp.o.d"
  "spare_freep_test"
  "spare_freep_test.pdb"
  "spare_freep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spare_freep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
