# Empty compiler generated dependencies file for spare_freep_test.
# This may be replaced when dependencies are built.
