# Empty dependencies file for wearlevel_aware_test.
# This may be replaced when dependencies are built.
