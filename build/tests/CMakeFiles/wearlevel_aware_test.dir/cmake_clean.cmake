file(REMOVE_RECURSE
  "CMakeFiles/wearlevel_aware_test.dir/wearlevel/aware_test.cpp.o"
  "CMakeFiles/wearlevel_aware_test.dir/wearlevel/aware_test.cpp.o.d"
  "wearlevel_aware_test"
  "wearlevel_aware_test.pdb"
  "wearlevel_aware_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlevel_aware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
