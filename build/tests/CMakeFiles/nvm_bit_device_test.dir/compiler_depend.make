# Empty compiler generated dependencies file for nvm_bit_device_test.
# This may be replaced when dependencies are built.
