# Empty compiler generated dependencies file for nvm_endurance_io_test.
# This may be replaced when dependencies are built.
