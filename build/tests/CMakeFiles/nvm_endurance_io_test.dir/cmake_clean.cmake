file(REMOVE_RECURSE
  "CMakeFiles/nvm_endurance_io_test.dir/nvm/endurance_io_test.cpp.o"
  "CMakeFiles/nvm_endurance_io_test.dir/nvm/endurance_io_test.cpp.o.d"
  "nvm_endurance_io_test"
  "nvm_endurance_io_test.pdb"
  "nvm_endurance_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_endurance_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
