file(REMOVE_RECURSE
  "CMakeFiles/wearlevel_age_based_test.dir/wearlevel/age_based_test.cpp.o"
  "CMakeFiles/wearlevel_age_based_test.dir/wearlevel/age_based_test.cpp.o.d"
  "wearlevel_age_based_test"
  "wearlevel_age_based_test.pdb"
  "wearlevel_age_based_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearlevel_age_based_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
