# Empty compiler generated dependencies file for wearlevel_age_based_test.
# This may be replaced when dependencies are built.
