# Empty compiler generated dependencies file for integration_attack_resistance_test.
# This may be replaced when dependencies are built.
