file(REMOVE_RECURSE
  "CMakeFiles/integration_attack_resistance_test.dir/integration/attack_resistance_test.cpp.o"
  "CMakeFiles/integration_attack_resistance_test.dir/integration/attack_resistance_test.cpp.o.d"
  "integration_attack_resistance_test"
  "integration_attack_resistance_test.pdb"
  "integration_attack_resistance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_attack_resistance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
