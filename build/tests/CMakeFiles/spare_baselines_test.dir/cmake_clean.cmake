file(REMOVE_RECURSE
  "CMakeFiles/spare_baselines_test.dir/spare/baselines_test.cpp.o"
  "CMakeFiles/spare_baselines_test.dir/spare/baselines_test.cpp.o.d"
  "spare_baselines_test"
  "spare_baselines_test.pdb"
  "spare_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spare_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
