# Empty dependencies file for spare_baselines_test.
# This may be replaced when dependencies are built.
