file(REMOVE_RECURSE
  "CMakeFiles/core_maxwe_grid_test.dir/core/maxwe_grid_test.cpp.o"
  "CMakeFiles/core_maxwe_grid_test.dir/core/maxwe_grid_test.cpp.o.d"
  "core_maxwe_grid_test"
  "core_maxwe_grid_test.pdb"
  "core_maxwe_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_maxwe_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
