# Empty dependencies file for core_maxwe_grid_test.
# This may be replaced when dependencies are built.
