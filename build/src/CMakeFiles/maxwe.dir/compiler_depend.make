# Empty compiler generated dependencies file for maxwe.
# This may be replaced when dependencies are built.
