
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/bpa.cpp" "src/CMakeFiles/maxwe.dir/attack/bpa.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/attack/bpa.cpp.o.d"
  "/root/repo/src/attack/hotspot.cpp" "src/CMakeFiles/maxwe.dir/attack/hotspot.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/attack/hotspot.cpp.o.d"
  "/root/repo/src/attack/random_uniform.cpp" "src/CMakeFiles/maxwe.dir/attack/random_uniform.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/attack/random_uniform.cpp.o.d"
  "/root/repo/src/attack/trace.cpp" "src/CMakeFiles/maxwe.dir/attack/trace.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/attack/trace.cpp.o.d"
  "/root/repo/src/attack/uaa.cpp" "src/CMakeFiles/maxwe.dir/attack/uaa.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/attack/uaa.cpp.o.d"
  "/root/repo/src/attack/zipf.cpp" "src/CMakeFiles/maxwe.dir/attack/zipf.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/attack/zipf.cpp.o.d"
  "/root/repo/src/cache/dram_buffer.cpp" "src/CMakeFiles/maxwe.dir/cache/dram_buffer.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/cache/dram_buffer.cpp.o.d"
  "/root/repo/src/core/analytic.cpp" "src/CMakeFiles/maxwe.dir/core/analytic.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/core/analytic.cpp.o.d"
  "/root/repo/src/core/latency_model.cpp" "src/CMakeFiles/maxwe.dir/core/latency_model.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/core/latency_model.cpp.o.d"
  "/root/repo/src/core/mapping_tables.cpp" "src/CMakeFiles/maxwe.dir/core/mapping_tables.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/core/mapping_tables.cpp.o.d"
  "/root/repo/src/core/maxwe.cpp" "src/CMakeFiles/maxwe.dir/core/maxwe.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/core/maxwe.cpp.o.d"
  "/root/repo/src/core/overhead.cpp" "src/CMakeFiles/maxwe.dir/core/overhead.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/core/overhead.cpp.o.d"
  "/root/repo/src/nvm/bit_device.cpp" "src/CMakeFiles/maxwe.dir/nvm/bit_device.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/nvm/bit_device.cpp.o.d"
  "/root/repo/src/nvm/device.cpp" "src/CMakeFiles/maxwe.dir/nvm/device.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/nvm/device.cpp.o.d"
  "/root/repo/src/nvm/endurance_io.cpp" "src/CMakeFiles/maxwe.dir/nvm/endurance_io.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/nvm/endurance_io.cpp.o.d"
  "/root/repo/src/nvm/endurance_map.cpp" "src/CMakeFiles/maxwe.dir/nvm/endurance_map.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/nvm/endurance_map.cpp.o.d"
  "/root/repo/src/nvm/endurance_model.cpp" "src/CMakeFiles/maxwe.dir/nvm/endurance_model.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/nvm/endurance_model.cpp.o.d"
  "/root/repo/src/nvm/geometry.cpp" "src/CMakeFiles/maxwe.dir/nvm/geometry.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/nvm/geometry.cpp.o.d"
  "/root/repo/src/reduction/codec.cpp" "src/CMakeFiles/maxwe.dir/reduction/codec.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/reduction/codec.cpp.o.d"
  "/root/repo/src/reduction/payload.cpp" "src/CMakeFiles/maxwe.dir/reduction/payload.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/reduction/payload.cpp.o.d"
  "/root/repo/src/salvage/line_sim.cpp" "src/CMakeFiles/maxwe.dir/salvage/line_sim.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/salvage/line_sim.cpp.o.d"
  "/root/repo/src/sim/bit_engine.cpp" "src/CMakeFiles/maxwe.dir/sim/bit_engine.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/sim/bit_engine.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/maxwe.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/CMakeFiles/maxwe.dir/sim/event_sim.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/sim/event_sim.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/maxwe.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/multi_bank.cpp" "src/CMakeFiles/maxwe.dir/sim/multi_bank.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/sim/multi_bank.cpp.o.d"
  "/root/repo/src/sim/wear_report.cpp" "src/CMakeFiles/maxwe.dir/sim/wear_report.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/sim/wear_report.cpp.o.d"
  "/root/repo/src/spare/factory.cpp" "src/CMakeFiles/maxwe.dir/spare/factory.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/spare/factory.cpp.o.d"
  "/root/repo/src/spare/freep.cpp" "src/CMakeFiles/maxwe.dir/spare/freep.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/spare/freep.cpp.o.d"
  "/root/repo/src/spare/none.cpp" "src/CMakeFiles/maxwe.dir/spare/none.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/spare/none.cpp.o.d"
  "/root/repo/src/spare/pcd.cpp" "src/CMakeFiles/maxwe.dir/spare/pcd.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/spare/pcd.cpp.o.d"
  "/root/repo/src/spare/ps.cpp" "src/CMakeFiles/maxwe.dir/spare/ps.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/spare/ps.cpp.o.d"
  "/root/repo/src/util/alias_table.cpp" "src/CMakeFiles/maxwe.dir/util/alias_table.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/util/alias_table.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/maxwe.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/maxwe.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/maxwe.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/maxwe.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/maxwe.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/util/table.cpp.o.d"
  "/root/repo/src/wearlevel/age_based.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/age_based.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/age_based.cpp.o.d"
  "/root/repo/src/wearlevel/bwl.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/bwl.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/bwl.cpp.o.d"
  "/root/repo/src/wearlevel/factory.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/factory.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/factory.cpp.o.d"
  "/root/repo/src/wearlevel/none.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/none.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/none.cpp.o.d"
  "/root/repo/src/wearlevel/pcm_s.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/pcm_s.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/pcm_s.cpp.o.d"
  "/root/repo/src/wearlevel/permutation_base.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/permutation_base.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/permutation_base.cpp.o.d"
  "/root/repo/src/wearlevel/security_refresh.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/security_refresh.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/security_refresh.cpp.o.d"
  "/root/repo/src/wearlevel/start_gap.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/start_gap.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/start_gap.cpp.o.d"
  "/root/repo/src/wearlevel/twl.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/twl.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/twl.cpp.o.d"
  "/root/repo/src/wearlevel/wawl.cpp" "src/CMakeFiles/maxwe.dir/wearlevel/wawl.cpp.o" "gcc" "src/CMakeFiles/maxwe.dir/wearlevel/wawl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
