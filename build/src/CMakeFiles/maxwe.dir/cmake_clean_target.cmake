file(REMOVE_RECURSE
  "libmaxwe.a"
)
