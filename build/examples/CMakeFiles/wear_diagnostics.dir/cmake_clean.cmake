file(REMOVE_RECURSE
  "CMakeFiles/wear_diagnostics.dir/wear_diagnostics.cpp.o"
  "CMakeFiles/wear_diagnostics.dir/wear_diagnostics.cpp.o.d"
  "wear_diagnostics"
  "wear_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
