# Empty compiler generated dependencies file for wear_diagnostics.
# This may be replaced when dependencies are built.
