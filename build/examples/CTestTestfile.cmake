# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_example "/root/repo/build/examples/paper_example")
set_tests_properties(example_paper_example PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_policy "/root/repo/build/examples/custom_policy")
set_tests_properties(example_custom_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wear_diagnostics "/root/repo/build/examples/wear_diagnostics")
set_tests_properties(example_wear_diagnostics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_comparison "/root/repo/build/examples/attack_comparison" "--lines" "512" "--regions" "32" "--endurance" "1500")
set_tests_properties(example_attack_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lifetime_study "/root/repo/build/examples/lifetime_study" "--seeds" "1")
set_tests_properties(example_lifetime_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
