// maxwe-sim: the command-line front end to the whole simulator.
//
// One binary, every knob. Examples:
//
//   # the paper's headline numbers
//   maxwe_sim --attack uaa --spare maxwe
//   maxwe_sim --attack uaa --spare none
//
//   # Fig. 8-style run on a scaled device
//   maxwe_sim --mode stochastic --lines 2048 --regions 128 \
//             --endurance-mean 5e4 --attack bpa --wl wawl --spare maxwe
//
//   # persist / reuse an endurance map
//   maxwe_sim --save-map map.csv
//   maxwe_sim --load-map map.csv --spare pcd

#include <filesystem>
#include <iostream>
#include <memory>

#include "core/maxwe.h"
#include "nvm/endurance_io.h"
#include "obs/session.h"
#include "sim/event_sim.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "spare/spare_scheme.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/stats.h"

namespace {

// --snapshot-interval without --snapshot-out derives the path from the
// metrics file ("m.json" -> "m.snapshots.jsonl") so one flag is enough.
std::string derive_snapshot_path(const std::string& metrics_path) {
  if (metrics_path.empty()) return "wear.snapshots.jsonl";
  const std::size_t dot = metrics_path.rfind('.');
  const std::size_t slash = metrics_path.rfind('/');
  const std::string stem =
      (dot == std::string::npos || (slash != std::string::npos && dot < slash))
          ? metrics_path
          : metrics_path.substr(0, dot);
  return stem + ".snapshots.jsonl";
}

// Run-level results published after either engine finishes.
void publish_result(nvmsec::MetricsRegistry* metrics,
                    const nvmsec::LifetimeResult& r) {
  if (metrics == nullptr) return;
  metrics->gauge("result.normalized_lifetime").set(r.normalized);
  metrics->gauge("result.ideal_lifetime").set(r.ideal_lifetime);
  metrics->gauge("result.failed").set(r.failed ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nvmsec;

  CliParser cli(
      "maxwe-sim: NVM lifetime simulator (Max-WE / DAC'19 reproduction)");
  cli.add_flag("mode", "event (stationary-rate attacks: uaa/hotspot/"
               "random/zipf, exact, full-scale), stochastic, or bit "
                       "(cell-granular with payload/codec/ECP)",
               "event");
  cli.add_flag("payload", "bit mode: random|constant|fnw-adversarial|"
                          "complement", "random");
  cli.add_flag("codec", "bit mode: full|differential|fnw", "differential");
  cli.add_flag("ecp", "bit mode: ECP entries per line", "0");
  cli.add_flag("lines", "device size in lines (0 = paper 1 GB geometry)",
               "0");
  cli.add_flag("regions", "region count (with --lines)", "128");
  cli.add_flag("endurance-mean", "endurance at mean current", "1e8");
  cli.add_flag("endurance-exponent", "power-law exponent k (E ~ I^-k)", "8");
  cli.add_flag("jitter", "intra-region lognormal endurance jitter sigma",
               "0");
  cli.add_flag("attack", "uaa | bpa | hotspot | random | zipf | mixed",
               "uaa");
  cli.add_flag("attack-phases",
               "mixed-attack phase schedule 'name:writes,...' (k/m/g "
               "suffixes; writes 0 = terminal unbounded last phase, a "
               "bounded last phase cycles). Implies --attack mixed; "
               "stochastic mode only", "");
  cli.add_flag("attack-onset",
               "shorthand for --attack-phases 'zipf:N,uaa:0': benign zipf "
               "traffic for N writes, then a UAA that runs to failure "
               "(0 = off)", "0");
  cli.add_flag("bpa-burst", "BPA burst length", "1024");
  cli.add_flag("zipf-skew", "zipf skew s", "0.99");
  cli.add_flag("hotspot-set", "hotspot working-set lines (>= 1)", "1");
  cli.add_switch("detect",
                 "online attack detector (stochastic mode): watch the user "
                 "write stream, close a verdict window every "
                 "--detect-window writes, emit detect_window/alarm events "
                 "and detector stats");
  cli.add_flag("detect-window",
               "detector window size in user writes", "16384");
  cli.add_switch("adaptive",
                 "self-tuning defense (needs --detect and a wear leveler): "
                 "retune the remap cadence from the alarm signal, bounded "
                 "escalation with cool-down");
  cli.add_flag("adaptive-factor",
               "cadence multiplier per escalation step (> 1)", "2.0");
  cli.add_flag("adaptive-max-steps",
               "escalation bound in steps either direction", "3");
  cli.add_flag("wl", "none|startgap|tlsr|pcms|bwl|wawl|twl", "none");
  cli.add_flag("swap-interval", "wear-leveler remap cadence", "100");
  cli.add_flag("spare", "none | pcd | ps | ps-worst | freep | maxwe",
               "none");
  cli.add_flag("spare-fraction", "spare share of capacity", "0.10");
  cli.add_flag("swr-fraction", "Max-WE SWR share of spares", "0.90");
  cli.add_flag("buffer-lines", "DRAM front-buffer lines (0 = none)", "0");
  cli.add_flag("max-writes", "user-write cap (0 = run to failure)", "0");
  cli.add_flag("seed", "RNG seed", "42");
  cli.add_flag("seeds", "average over N seeds (seed, seed+1, ...)", "1");
  cli.add_flag("banks", "multi-bank module: independent banks (1 = single)",
               "1");
  cli.add_flag("jobs",
               "worker threads for --seeds/--banks sweeps (0 = all cores, "
               "1 = serial code path)", "0");
  cli.add_flag("save-map", "write the endurance map CSV here and exit", "");
  cli.add_flag("load-map", "read the endurance map from this CSV", "");
  cli.add_flag("metrics-out", "write run metrics (counters/gauges) here", "");
  cli.add_flag("metrics-format", "metrics file format: json | csv", "json");
  cli.add_flag("trace-out",
               "write a Chrome-trace event file here (open in Perfetto)", "");
  cli.add_flag("snapshot-out",
               "wear-snapshot JSONL path (default: derived from "
               "--metrics-out)", "");
  cli.add_flag("snapshot-interval",
               "emit a wear snapshot every N user writes (0 = off)", "0");
  cli.add_flag("events-out",
               "decision event log (JSONL flight recorder; feed to "
               "maxwe_report)", "");
  cli.add_flag("profile-out",
               "write the aggregate self-profile JSON here (phase timings, "
               "cache/chunk counters, worker utilization; wall-clock, so "
               "excluded from byte-identity — feed to maxwe_profile)", "");
  cli.add_flag("checkpoint-out",
               "crash-safe checkpoint file: engine state every "
               "--checkpoint-interval writes (single stochastic run), or "
               "completed-run records (--seeds/--banks sweeps)", "");
  cli.add_flag("checkpoint-interval",
               "user writes between engine checkpoints (single stochastic "
               "run; 0 = off)", "0");
  cli.add_switch("resume",
                 "resume from --checkpoint-out if it exists, else start "
                 "fresh");
  cli.add_flag("fault-stuck-at",
               "device fault: lines that die on their first write", "0");
  cli.add_flag("fault-early-death",
               "device fault: lines with a fraction of mapped endurance",
               "0");
  cli.add_flag("fault-early-death-fraction",
               "remaining endurance fraction for early-death lines", "0.01");
  cli.add_flag("fault-outlier-regions",
               "device fault: regions with scaled true endurance", "0");
  cli.add_flag("fault-outlier-factor",
               "endurance scale factor for outlier regions", "0.25");
  cli.add_flag("fault-flip-interval",
               "metadata fault: flip one RMT/LMT bit every N user writes "
               "(0 = off; needs --spare maxwe --mode stochastic)", "0");
  cli.add_flag("fault-seed",
               "fault-injection RNG seed (its own stream; base results "
               "are unchanged by faults being off or on a new seed)",
               "99540903");
  cli.add_switch("no-fastpath",
                 "disable the batched fast path (stochastic mode). "
                 "Bit-identical either way for uaa/bpa; for hotspot the "
                 "write multiset is exact, and for random/zipf the batched "
                 "run is distribution-equivalent (its own RNG substream), "
                 "not bit-identical");
  cli.add_switch("verbose", "info-level logging");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  try {
    if (cli.get_bool("verbose")) set_log_level(LogLevel::kInfo);

    ExperimentConfig config;
    const std::uint64_t lines = cli.get_uint("lines");
    if (lines > 0) {
      config.geometry = DeviceGeometry::scaled(lines, cli.get_uint("regions"));
    }
    config.endurance.endurance_at_mean = cli.get_double("endurance-mean");
    config.endurance.endurance_exponent =
        cli.get_double("endurance-exponent");
    config.line_jitter_sigma = cli.get_double("jitter");
    config.attack = cli.get_string("attack");
    config.mixed_phases = cli.get_string("attack-phases");
    const std::uint64_t attack_onset = cli.get_uint("attack-onset");
    if (attack_onset > 0) {
      if (!config.mixed_phases.empty()) {
        std::cerr << "error: --attack-onset and --attack-phases are two "
                     "spellings of the same schedule; pick one\n";
        return 1;
      }
      config.mixed_phases =
          "zipf:" + std::to_string(attack_onset) + ",uaa:0";
    }
    if (!config.mixed_phases.empty()) config.attack = "mixed";
    config.bpa_burst = cli.get_uint("bpa-burst");
    config.zipf_skew = cli.get_double("zipf-skew");
    config.hotspot_working_set = cli.get_uint("hotspot-set");
    config.detect = cli.get_bool("detect");
    config.detector.window_writes = cli.get_uint("detect-window");
    config.adaptive = cli.get_bool("adaptive");
    config.adaptive_policy.escalate_factor =
        cli.get_double("adaptive-factor");
    config.adaptive_policy.max_steps =
        static_cast<std::uint32_t>(cli.get_uint("adaptive-max-steps"));
    config.wear_leveler = cli.get_string("wl");
    config.wl.swap_interval = cli.get_uint("swap-interval");
    config.spare_scheme = cli.get_string("spare");
    config.spare_fraction = cli.get_double("spare-fraction");
    config.swr_fraction = cli.get_double("swr-fraction");
    config.dram_buffer_lines = cli.get_uint("buffer-lines");
    config.max_user_writes = cli.get_uint("max-writes");
    config.fastpath = !cli.get_bool("no-fastpath");
    config.seed = cli.get_uint("seed");
    config.fault.device.stuck_at_lines = cli.get_uint("fault-stuck-at");
    config.fault.device.early_death_lines = cli.get_uint("fault-early-death");
    config.fault.device.early_death_fraction =
        cli.get_double("fault-early-death-fraction");
    config.fault.device.outlier_regions =
        cli.get_uint("fault-outlier-regions");
    config.fault.device.outlier_factor =
        cli.get_double("fault-outlier-factor");
    config.fault.metadata.flip_interval = cli.get_uint("fault-flip-interval");
    config.fault.seed = cli.get_uint("fault-seed");
    const std::string mode = cli.get_string("mode");
    if (mode == "stochastic") {
      config.mode = SimulationMode::kStochastic;
    } else if (mode == "bit") {
      config.mode = SimulationMode::kBitLevel;
      config.payload = cli.get_string("payload");
      config.codec = cli.get_string("codec");
      config.ecp_entries = static_cast<std::uint32_t>(cli.get_uint("ecp"));
    } else if (mode == "event") {
      config.mode = SimulationMode::kUniformEvent;
    } else {
      std::cerr << "error: unknown --mode '" << mode << "'\n";
      return 1;
    }

    ParallelOptions parallel;
    parallel.jobs = static_cast<std::size_t>(cli.get_uint("jobs"));
    const std::uint64_t seeds = cli.get_uint("seeds");
    const auto banks = static_cast<std::uint32_t>(cli.get_uint("banks"));
    if (banks > 1 && seeds > 1) {
      std::cerr << "error: --banks and --seeds cannot be combined\n";
      return 1;
    }

    const std::string checkpoint_out = cli.get_string("checkpoint-out");
    const WriteCount checkpoint_interval = cli.get_uint("checkpoint-interval");
    const bool resume = cli.get_bool("resume");
    if (resume && checkpoint_out.empty()) {
      std::cerr << "error: --resume needs --checkpoint-out\n";
      return 1;
    }
    if (banks > 1 || seeds > 1) {
      // Sweeps checkpoint at run granularity: each finished run's result is
      // recorded, and a resumed sweep re-runs only the missing ones.
      if (checkpoint_interval > 0) {
        std::cerr << "error: sweep checkpoints record whole runs; drop "
                     "--checkpoint-interval (it applies to single "
                     "stochastic runs)\n";
        return 1;
      }
      parallel.checkpoint_path = checkpoint_out;
      parallel.resume = resume;
    } else {
      if (!checkpoint_out.empty() && checkpoint_interval == 0 && !resume) {
        std::cerr << "error: --checkpoint-out needs --checkpoint-interval "
                     "(or --resume to finish a run without further "
                     "checkpoints)\n";
        return 1;
      }
      if (checkpoint_interval > 0) {
        config.checkpoint_out = checkpoint_out;
        config.checkpoint_interval = checkpoint_interval;
      }
      if (resume && std::filesystem::exists(checkpoint_out)) {
        config.resume_from = checkpoint_out;
      }
    }

    ObsConfig obs_config;
    obs_config.metrics_path = cli.get_string("metrics-out");
    obs_config.metrics_format = cli.get_string("metrics-format");
    obs_config.trace_path = cli.get_string("trace-out");
    obs_config.snapshot_interval = cli.get_uint("snapshot-interval");
    obs_config.snapshot_path = cli.get_string("snapshot-out");
    obs_config.events_path = cli.get_string("events-out");
    obs_config.profile_path = cli.get_string("profile-out");
    // The obs session must know up front whether this run restores from a
    // checkpoint: a resumed event log is appended to (and rewound to the
    // checkpoint's byte offset by the engine), not truncated.
    obs_config.resume = !config.resume_from.empty();
    if (obs_config.snapshot_interval > 0 && obs_config.snapshot_path.empty()) {
      obs_config.snapshot_path = derive_snapshot_path(obs_config.metrics_path);
    }
    std::unique_ptr<ObsSession> obs;
    if (obs_config.any()) {
      obs = std::make_unique<ObsSession>(obs_config);
      config.observer = obs->observer();
      // Single runs record straight into the session profiler via the
      // observer; sweep paths hand it to the runner, which gives every run
      // a private instance and merges them deterministically at the join.
      parallel.profiler = obs->profiler();
    }

    if (const std::string path = cli.get_string("save-map"); !path.empty()) {
      Rng rng(config.seed);
      const EnduranceModel model(config.endurance);
      const EnduranceMap map =
          EnduranceMap::from_model(config.geometry, model, rng);
      save_endurance_csv(map, path).throw_if_error();
      std::cout << "wrote " << config.geometry.num_regions()
                << " region endurances to " << path << "\n";
      return 0;
    }
    // A loaded map replaces the generated one via a dedicated run below.
    if (const std::string path = cli.get_string("load-map"); !path.empty()) {
      log_info() << "loading endurance map from " << path;
      const EnduranceMap loaded = load_endurance_csv(path).take();
      config.geometry = loaded.geometry();
      // run_experiment regenerates from the model; to honour the file we
      // replicate its minimal pipeline here.
      auto map = std::make_shared<EnduranceMap>(loaded);
      Rng rng(config.seed);
      if (config.line_jitter_sigma > 0) {
        map->apply_line_jitter(config.line_jitter_sigma, rng);
      }
      std::unique_ptr<SpareScheme> spare;
      if (config.spare_scheme == "maxwe") {
        MaxWeParams p;
        p.spare_fraction = config.spare_fraction;
        p.swr_fraction = config.swr_fraction;
        spare = make_maxwe(map, p);
      } else if (config.spare_scheme == "pcd") {
        spare = make_pcd(map, config.spare_lines(), rng);
      } else if (config.spare_scheme == "ps") {
        spare = make_ps(map, config.spare_lines(), rng);
      } else if (config.spare_scheme == "ps-worst") {
        spare = make_ps_worst(map, config.spare_lines(), rng);
      } else {
        spare = make_no_spare(map);
      }
      UniformEventSimulator sim(map, *spare);
      sim.set_observer(config.observer);
      const LifetimeResult r = sim.run();
      if (obs) {
        publish_result(obs->metrics(), r);
        obs->finalize();
      }
      std::cout << "normalized lifetime: " << 100.0 * r.normalized
                << "%  (user writes " << r.user_writes << ", line deaths "
                << r.line_deaths << ")\n";
      return 0;
    }

    // Multi-bank module lifetime: banks fan out across --jobs workers.
    if (banks > 1) {
      const MultiBankResult r = run_multi_bank(config, banks, parallel);
      if (obs) obs->finalize();
      std::cout << "attack=" << config.attack << " wl=" << config.wear_leveler
                << " spare=" << config.spare_scheme << " banks=" << banks
                << " base seed=" << config.seed << "\n"
                << "system lifetime:     " << 100.0 * r.system_normalized
                << "%  (weakest bank " << r.weakest_bank << ")\n"
                << "mean bank lifetime:  " << 100.0 * r.mean_bank << "%\n"
                << "max bank lifetime:   " << 100.0 * r.max_bank << "%\n";
      return 0;
    }

    // Seed sweep: N independent runs, deterministic seed-order reduction.
    if (seeds > 1) {
      std::vector<ExperimentConfig> sweep(seeds, config);
      for (std::uint64_t s = 0; s < seeds; ++s) {
        sweep[s].seed = config.seed + s;
      }
      const std::vector<LifetimeResult> results =
          run_experiments(sweep, parallel);
      RunningStats stats;
      for (const LifetimeResult& r : results) stats.add(r.normalized);
      if (obs) obs->finalize();
      std::cout << "attack=" << config.attack << " wl=" << config.wear_leveler
                << " spare=" << config.spare_scheme << " seeds=" << config.seed
                << ".." << config.seed + seeds - 1 << "\n"
                << "normalized lifetime: " << 100.0 * stats.mean()
                << "%  (stddev " << 100.0 * stats.stddev() << " pp, min "
                << 100.0 * stats.min() << "%, max " << 100.0 * stats.max()
                << "%)\n";
      return 0;
    }

    const LifetimeResult r = run_experiment(config);
    if (obs) {
      publish_result(obs->metrics(), r);
      obs->finalize();
      if (!obs_config.metrics_path.empty()) {
        std::cout << "metrics:   " << obs_config.metrics_path << "\n";
      }
      if (!obs_config.trace_path.empty()) {
        std::cout << "trace:     " << obs_config.trace_path << "\n";
      }
      if (obs_config.snapshot_interval > 0) {
        std::cout << "snapshots: " << obs_config.snapshot_path << "\n";
      }
      if (!obs_config.events_path.empty()) {
        std::cout << "events:    " << obs_config.events_path << "\n";
      }
      if (!obs_config.profile_path.empty()) {
        std::cout << "profile:   " << obs_config.profile_path << "\n";
      }
    }
    std::cout << "attack=" << config.attack << " wl=" << config.wear_leveler
              << " spare=" << config.spare_scheme << " seed=" << config.seed
              << "\n"
              << "normalized lifetime: " << 100.0 * r.normalized << "%\n"
              << "user writes:         " << r.user_writes << "\n"
              << "overhead writes:     " << r.overhead_writes << "\n"
              // Buffer hits, plus (terminal stochastic chunks) user writes
              // credited for interleaving that never reached the device.
              << "absorbed writes:     " << r.absorbed_writes << "\n"
              << "line deaths:         " << r.line_deaths << "\n"
              << "outcome:             " << r.failure_reason << "\n";
    if (config.detect) {
      std::cout << "detector windows:    " << r.windows_observed
                << "  (anomalous " << r.anomalous_windows << ", in alarm "
                << r.windows_in_alarm << ")\n"
                << "alarms raised:       " << r.alarms_raised << "\n";
      if (config.adaptive) {
        std::cout << "cadence changes:     " << r.cadence_changes << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
