// maxwe-sim: the command-line front end to the whole simulator.
//
// One binary, every knob. Examples:
//
//   # the paper's headline numbers
//   maxwe_sim --attack uaa --spare maxwe
//   maxwe_sim --attack uaa --spare none
//
//   # Fig. 8-style run on a scaled device
//   maxwe_sim --mode stochastic --lines 2048 --regions 128 \
//             --endurance-mean 5e4 --attack bpa --wl wawl --spare maxwe
//
//   # persist / reuse an endurance map
//   maxwe_sim --save-map map.csv
//   maxwe_sim --load-map map.csv --spare pcd

#include <iostream>
#include <memory>

#include "core/maxwe.h"
#include "nvm/endurance_io.h"
#include "sim/event_sim.h"
#include "sim/experiment.h"
#include "spare/spare_scheme.h"
#include "util/cli.h"
#include "util/log.h"

int main(int argc, char** argv) {
  using namespace nvmsec;

  CliParser cli(
      "maxwe-sim: NVM lifetime simulator (Max-WE / DAC'19 reproduction)");
  cli.add_flag("mode", "event (UAA, exact, full-scale), stochastic, or bit "
                       "(cell-granular with payload/codec/ECP)",
               "event");
  cli.add_flag("payload", "bit mode: random|constant|fnw-adversarial|"
                          "complement", "random");
  cli.add_flag("codec", "bit mode: full|differential|fnw", "differential");
  cli.add_flag("ecp", "bit mode: ECP entries per line", "0");
  cli.add_flag("lines", "device size in lines (0 = paper 1 GB geometry)",
               "0");
  cli.add_flag("regions", "region count (with --lines)", "128");
  cli.add_flag("endurance-mean", "endurance at mean current", "1e8");
  cli.add_flag("endurance-exponent", "power-law exponent k (E ~ I^-k)", "8");
  cli.add_flag("jitter", "intra-region lognormal endurance jitter sigma",
               "0");
  cli.add_flag("attack", "uaa | bpa | hotspot | random | zipf", "uaa");
  cli.add_flag("bpa-burst", "BPA burst length", "1024");
  cli.add_flag("zipf-skew", "zipf skew s", "0.99");
  cli.add_flag("wl", "none|startgap|tlsr|pcms|bwl|wawl|twl", "none");
  cli.add_flag("swap-interval", "wear-leveler remap cadence", "100");
  cli.add_flag("spare", "none | pcd | ps | ps-worst | maxwe", "none");
  cli.add_flag("spare-fraction", "spare share of capacity", "0.10");
  cli.add_flag("swr-fraction", "Max-WE SWR share of spares", "0.90");
  cli.add_flag("buffer-lines", "DRAM front-buffer lines (0 = none)", "0");
  cli.add_flag("max-writes", "user-write cap (0 = run to failure)", "0");
  cli.add_flag("seed", "RNG seed", "42");
  cli.add_flag("save-map", "write the endurance map CSV here and exit", "");
  cli.add_flag("load-map", "read the endurance map from this CSV", "");
  cli.add_switch("verbose", "info-level logging");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  try {
    if (cli.get_bool("verbose")) set_log_level(LogLevel::kInfo);

    ExperimentConfig config;
    const auto lines = static_cast<std::uint64_t>(cli.get_int("lines"));
    if (lines > 0) {
      config.geometry = DeviceGeometry::scaled(
          lines, static_cast<std::uint64_t>(cli.get_int("regions")));
    }
    config.endurance.endurance_at_mean = cli.get_double("endurance-mean");
    config.endurance.endurance_exponent =
        cli.get_double("endurance-exponent");
    config.line_jitter_sigma = cli.get_double("jitter");
    config.attack = cli.get_string("attack");
    config.bpa_burst = static_cast<std::uint64_t>(cli.get_int("bpa-burst"));
    config.zipf_skew = cli.get_double("zipf-skew");
    config.wear_leveler = cli.get_string("wl");
    config.wl.swap_interval =
        static_cast<std::uint64_t>(cli.get_int("swap-interval"));
    config.spare_scheme = cli.get_string("spare");
    config.spare_fraction = cli.get_double("spare-fraction");
    config.swr_fraction = cli.get_double("swr-fraction");
    config.dram_buffer_lines =
        static_cast<std::uint64_t>(cli.get_int("buffer-lines"));
    config.max_user_writes =
        static_cast<WriteCount>(cli.get_int("max-writes"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const std::string mode = cli.get_string("mode");
    if (mode == "stochastic") {
      config.mode = SimulationMode::kStochastic;
    } else if (mode == "bit") {
      config.mode = SimulationMode::kBitLevel;
      config.payload = cli.get_string("payload");
      config.codec = cli.get_string("codec");
      config.ecp_entries = static_cast<std::uint32_t>(cli.get_int("ecp"));
    } else if (mode == "event") {
      config.mode = SimulationMode::kUniformEvent;
    } else {
      std::cerr << "error: unknown --mode '" << mode << "'\n";
      return 1;
    }

    if (const std::string path = cli.get_string("save-map"); !path.empty()) {
      Rng rng(config.seed);
      const EnduranceModel model(config.endurance);
      const EnduranceMap map =
          EnduranceMap::from_model(config.geometry, model, rng);
      save_endurance_csv(map, path);
      std::cout << "wrote " << config.geometry.num_regions()
                << " region endurances to " << path << "\n";
      return 0;
    }
    // A loaded map replaces the generated one via a dedicated run below.
    if (const std::string path = cli.get_string("load-map"); !path.empty()) {
      log_info() << "loading endurance map from " << path;
      const EnduranceMap loaded = load_endurance_csv(path);
      config.geometry = loaded.geometry();
      // run_experiment regenerates from the model; to honour the file we
      // replicate its minimal pipeline here.
      auto map = std::make_shared<EnduranceMap>(loaded);
      Rng rng(config.seed);
      if (config.line_jitter_sigma > 0) {
        map->apply_line_jitter(config.line_jitter_sigma, rng);
      }
      std::unique_ptr<SpareScheme> spare;
      if (config.spare_scheme == "maxwe") {
        MaxWeParams p;
        p.spare_fraction = config.spare_fraction;
        p.swr_fraction = config.swr_fraction;
        spare = make_maxwe(map, p);
      } else if (config.spare_scheme == "pcd") {
        spare = make_pcd(map, config.spare_lines(), rng);
      } else if (config.spare_scheme == "ps") {
        spare = make_ps(map, config.spare_lines(), rng);
      } else if (config.spare_scheme == "ps-worst") {
        spare = make_ps_worst(map, config.spare_lines(), rng);
      } else {
        spare = make_no_spare(map);
      }
      UniformEventSimulator sim(map, *spare);
      const LifetimeResult r = sim.run();
      std::cout << "normalized lifetime: " << 100.0 * r.normalized
                << "%  (user writes " << r.user_writes << ", line deaths "
                << r.line_deaths << ")\n";
      return 0;
    }

    const LifetimeResult r = run_experiment(config);
    std::cout << "attack=" << config.attack << " wl=" << config.wear_leveler
              << " spare=" << config.spare_scheme << " seed=" << config.seed
              << "\n"
              << "normalized lifetime: " << 100.0 * r.normalized << "%\n"
              << "user writes:         " << r.user_writes << "\n"
              << "overhead writes:     " << r.overhead_writes << "\n"
              << "absorbed by buffer:  " << r.absorbed_writes << "\n"
              << "line deaths:         " << r.line_deaths << "\n"
              << "outcome:             " << r.failure_reason << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
