# Profiler acceptance check, two halves:
#
#  1. Byte-identity gate: attaching --profile-out must not change any
#     deterministic output by a single byte — the event log and checkpoint
#     of a stochastic run, and the fleet-result JSON of a --jobs 2
#     campaign, are compared with and without the profiler attached.
#  2. Schema/coverage: the profile JSONs parse (schema v1, expected keys)
#     and maxwe_profile renders them with an attributed-fraction line.

# --- stochastic run without profiler ---------------------------------------
execute_process(
  COMMAND ${TOOL} --mode stochastic --lines 512 --regions 32
          --endurance-mean 1000 --attack zipf --wl tlsr --spare maxwe
          --buffer-lines 8 --max-writes 2000000 --detect
          --events-out ${WORK_DIR}/prof_base.events.jsonl
          --checkpoint-out ${WORK_DIR}/prof_base.ckpt
          --checkpoint-interval 8192
  RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "baseline stochastic run failed: ${run_result}")
endif()

# --- same run with the profiler attached -----------------------------------
execute_process(
  COMMAND ${TOOL} --mode stochastic --lines 512 --regions 32
          --endurance-mean 1000 --attack zipf --wl tlsr --spare maxwe
          --buffer-lines 8 --max-writes 2000000 --detect
          --events-out ${WORK_DIR}/prof_on.events.jsonl
          --checkpoint-out ${WORK_DIR}/prof_on.ckpt
          --checkpoint-interval 8192
          --profile-out ${WORK_DIR}/prof_run.profile.json
  RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "profiled stochastic run failed: ${run_result}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/prof_base.events.jsonl ${WORK_DIR}/prof_on.events.jsonl
  RESULT_VARIABLE cmp_result)
if(NOT cmp_result EQUAL 0)
  message(FATAL_ERROR "event log changed when the profiler was attached")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/prof_base.ckpt ${WORK_DIR}/prof_on.ckpt
  RESULT_VARIABLE cmp_result)
if(NOT cmp_result EQUAL 0)
  message(FATAL_ERROR "checkpoint changed when the profiler was attached")
endif()

# --- fleet campaign with and without the profiler, --jobs 2 ----------------
execute_process(
  COMMAND ${FLEET} --devices 48 --shard-size 8 --jobs 2 --lines 256
          --regions 16 --endurance-mean 200 --spare maxwe
          --out ${WORK_DIR}/prof_fleet_base.json
  RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "baseline fleet run failed: ${run_result}")
endif()
execute_process(
  COMMAND ${FLEET} --devices 48 --shard-size 8 --jobs 2 --lines 256
          --regions 16 --endurance-mean 200 --spare maxwe
          --out ${WORK_DIR}/prof_fleet_on.json
          --profile-out ${WORK_DIR}/prof_fleet.profile.json
          --heartbeat-out ${WORK_DIR}/prof_fleet.heartbeat.jsonl
          --heartbeat-interval 8
  RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "profiled fleet run failed: ${run_result}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/prof_fleet_base.json ${WORK_DIR}/prof_fleet_on.json
  RESULT_VARIABLE cmp_result)
if(NOT cmp_result EQUAL 0)
  message(FATAL_ERROR "fleet result changed when the profiler was attached")
endif()

# --- profile schema --------------------------------------------------------
foreach(profile prof_run.profile.json prof_fleet.profile.json)
  file(READ ${WORK_DIR}/${profile} doc)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON v ERROR_VARIABLE err GET "${doc}" v)
    if(NOT err STREQUAL "NOTFOUND" OR NOT v EQUAL 1)
      message(FATAL_ERROR "${profile}: bad schema version: '${v}' ${err}")
    endif()
    string(JSON v ERROR_VARIABLE err GET "${doc}" deterministic)
    if(NOT v STREQUAL "OFF" AND NOT v STREQUAL "false")
      message(FATAL_ERROR "${profile}: must declare deterministic:false")
    endif()
    foreach(key wall_ns phases counters utilization)
      string(JSON v ERROR_VARIABLE err GET "${doc}" ${key})
      if(err MATCHES "not found")
        message(FATAL_ERROR "${profile}: missing '${key}': ${err}")
      endif()
    endforeach()
  else()
    foreach(key "\"v\"" "\"phases\"" "\"counters\"" "\"utilization\"")
      if(NOT doc MATCHES "${key}")
        message(FATAL_ERROR "${profile}: missing ${key}")
      endif()
    endforeach()
  endif()
endforeach()
file(READ ${WORK_DIR}/prof_run.profile.json run_doc)
if(NOT run_doc MATCHES "\"engine.run\"")
  message(FATAL_ERROR "stochastic profile has no engine.run phase")
endif()
file(READ ${WORK_DIR}/prof_fleet.profile.json fleet_doc)
if(NOT fleet_doc MATCHES "\"fleet.shard\"" OR
   NOT fleet_doc MATCHES "\"fleet.device\"")
  message(FATAL_ERROR "fleet profile is missing fleet.shard/fleet.device")
endif()

# Heartbeat v3 utilization fields must appear once shards have landed (the
# final line always has timed shards in a fresh campaign).
file(READ ${WORK_DIR}/prof_fleet.heartbeat.jsonl heartbeat)
if(NOT heartbeat MATCHES "\"v\":3" OR
   NOT heartbeat MATCHES "\"shard_imbalance\"" OR
   NOT heartbeat MATCHES "\"worker_busy_frac\"")
  message(FATAL_ERROR "heartbeat lines are missing the v3 fields")
endif()

# --- renderer --------------------------------------------------------------
foreach(profile prof_run.profile.json prof_fleet.profile.json)
  execute_process(
    COMMAND ${PROFILE} --profile ${WORK_DIR}/${profile}
    RESULT_VARIABLE render_result OUTPUT_VARIABLE render_out)
  if(NOT render_result EQUAL 0)
    message(FATAL_ERROR "maxwe_profile failed on ${profile}")
  endif()
  if(NOT render_out MATCHES "attributed: ")
    message(FATAL_ERROR "maxwe_profile output has no attributed line")
  endif()
endforeach()
execute_process(
  COMMAND ${PROFILE} --profile ${WORK_DIR}/prof_fleet.profile.json
          --compare ${WORK_DIR}/prof_run.profile.json
  RESULT_VARIABLE render_result OUTPUT_VARIABLE render_out)
if(NOT render_result EQUAL 0 OR NOT render_out MATCHES "vs baseline")
  message(FATAL_ERROR "maxwe_profile --compare failed")
endif()
