# Fleet acceptance check, tool level:
#   (a) a campaign interrupted by --stop-after-shards and resumed at a
#       different --jobs level writes a byte-identical fleet-result JSON to
#       an uninterrupted run (ISSUE acceptance: resume + jobs cannot change
#       the population statistics);
#   (b) every heartbeat line conforms to the documented JSONL schema;
#   (c) fleet_report renders the result (and refuses a non-fleet file).
set(common --devices 192 --shard-size 32 --lines 256 --regions 16
    --endurance-mean 200 --spare maxwe --heartbeat-interval 64)
set(ckpt ${WORK_DIR}/fleet_test.ckpt)
file(REMOVE ${ckpt})

# Reference: one uninterrupted serial campaign.
execute_process(
  COMMAND ${TOOL} ${common} --jobs 1 --out ${WORK_DIR}/fleet_ref.json
  RESULT_VARIABLE ref_result ERROR_VARIABLE ref_err)
if(NOT ref_result EQUAL 0)
  message(FATAL_ERROR "reference fleet run failed: ${ref_result}\n${ref_err}")
endif()

# Interrupted: stop after two shards; must exit 3 (incomplete) and leave a
# checkpoint behind.
execute_process(
  COMMAND ${TOOL} ${common} --jobs 1 --stop-after-shards 2
          --checkpoint-out ${ckpt} --out ${WORK_DIR}/fleet_partial.json
  RESULT_VARIABLE stop_result ERROR_VARIABLE stop_err)
if(NOT stop_result EQUAL 3)
  message(FATAL_ERROR
          "interrupted fleet run should exit 3, got ${stop_result}")
endif()
if(NOT EXISTS ${ckpt})
  message(FATAL_ERROR "interrupted campaign left no checkpoint at ${ckpt}")
endif()

# Resumed at a different job count, with a heartbeat attached.
execute_process(
  COMMAND ${TOOL} ${common} --jobs 2 --checkpoint-out ${ckpt} --resume
          --heartbeat-out ${WORK_DIR}/fleet_heartbeat.jsonl
          --out ${WORK_DIR}/fleet_resumed.json
  RESULT_VARIABLE res_result ERROR_VARIABLE res_err)
if(NOT res_result EQUAL 0)
  message(FATAL_ERROR "resumed fleet run failed: ${res_result}\n${res_err}")
endif()

file(READ ${WORK_DIR}/fleet_ref.json ref_json)
file(READ ${WORK_DIR}/fleet_resumed.json res_json)
if(NOT ref_json STREQUAL res_json)
  message(FATAL_ERROR "resumed fleet JSON differs from the uninterrupted run")
endif()

# Heartbeat: at least one line, every line carrying the documented fields.
file(STRINGS ${WORK_DIR}/fleet_heartbeat.jsonl hb_lines)
list(LENGTH hb_lines n_hb)
if(n_hb LESS 1)
  message(FATAL_ERROR "heartbeat file has no lines")
endif()
foreach(line IN LISTS hb_lines)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    foreach(key "v" "type" "devices_done" "devices_total" "devices_per_sec"
            "eta_sec" "p50" "p99" "failure_causes" "truncated_logs")
      string(JSON v ERROR_VARIABLE err GET "${line}" "${key}")
      if(NOT err STREQUAL "NOTFOUND")
        message(FATAL_ERROR "heartbeat line missing '${key}': ${line}")
      endif()
    endforeach()
    string(JSON hb_type GET "${line}" "type")
    if(NOT hb_type STREQUAL "fleet_heartbeat")
      message(FATAL_ERROR "unexpected heartbeat type: ${hb_type}")
    endif()
  elseif(NOT line MATCHES "\"type\":\"fleet_heartbeat\"")
    message(FATAL_ERROR "heartbeat line missing type: ${line}")
  endif()
endforeach()
# The final heartbeat always covers the whole population.
list(GET hb_lines -1 last_hb)
if(NOT last_hb MATCHES "\"devices_done\":192")
  message(FATAL_ERROR "final heartbeat does not cover the fleet: ${last_hb}")
endif()

# A checkpoint from a different population must be refused.
execute_process(
  COMMAND ${TOOL} ${common} --jobs 1 --seed-start 999
          --checkpoint-out ${ckpt} --resume
  RESULT_VARIABLE foreign_result ERROR_VARIABLE foreign_err)
if(foreign_result EQUAL 0)
  message(FATAL_ERROR "resume from a foreign fleet checkpoint succeeded")
endif()

# The report renders both terminal and markdown views of the result.
execute_process(
  COMMAND ${REPORT} --fleet ${WORK_DIR}/fleet_ref.json
  RESULT_VARIABLE rep_result OUTPUT_VARIABLE rep_out ERROR_VARIABLE rep_err)
if(NOT rep_result EQUAL 0)
  message(FATAL_ERROR "fleet_report failed: ${rep_result}\n${rep_err}")
endif()
foreach(section "Population" "Lifetime" "Failure causes")
  if(NOT rep_out MATCHES "${section}")
    message(FATAL_ERROR "fleet_report output missing '${section}' section")
  endif()
endforeach()
execute_process(
  COMMAND ${REPORT} --fleet ${WORK_DIR}/fleet_ref.json
          --md ${WORK_DIR}/fleet_report.md
          --compare ${WORK_DIR}/fleet_resumed.json
  RESULT_VARIABLE md_result OUTPUT_VARIABLE md_out)
if(NOT md_result EQUAL 0)
  message(FATAL_ERROR "fleet_report --md --compare failed: ${md_result}")
endif()
if(NOT EXISTS ${WORK_DIR}/fleet_report.md)
  message(FATAL_ERROR "--md wrote no Markdown file")
endif()
file(READ ${WORK_DIR}/fleet_report.md md_text)
if(NOT md_text MATCHES "## ")
  message(FATAL_ERROR "Markdown report has no section headings")
endif()

# And it refuses a file that is not a fleet result.
file(WRITE ${WORK_DIR}/fleet_not_a_fleet.json "{\"type\":\"metrics\"}\n")
execute_process(
  COMMAND ${REPORT} --fleet ${WORK_DIR}/fleet_not_a_fleet.json
  RESULT_VARIABLE bad_result ERROR_VARIABLE bad_err)
if(bad_result EQUAL 0)
  message(FATAL_ERROR "fleet_report accepted a non-fleet JSON file")
endif()
