# Save an endurance map, then run an experiment from the saved file.
execute_process(
  COMMAND ${TOOL} --save-map ${WORK_DIR}/roundtrip_map.csv
          --lines 1024 --regions 64 --endurance-mean 1000
  RESULT_VARIABLE save_result)
if(NOT save_result EQUAL 0)
  message(FATAL_ERROR "save-map failed: ${save_result}")
endif()
execute_process(
  COMMAND ${TOOL} --load-map ${WORK_DIR}/roundtrip_map.csv --spare maxwe
  RESULT_VARIABLE load_result OUTPUT_VARIABLE out)
if(NOT load_result EQUAL 0)
  message(FATAL_ERROR "load-map run failed: ${load_result}")
endif()
if(NOT out MATCHES "normalized lifetime")
  message(FATAL_ERROR "unexpected output: ${out}")
endif()
