# Flight-recorder acceptance check: --events-out writes a deterministic,
# schema-versioned JSONL decision log (byte-identical across repeats and
# across an interrupted-then-resumed run), and maxwe_report renders a
# post-mortem from it. Needs TOOL (maxwe_sim), REPORT (maxwe_report) and
# WORK_DIR.
set(ev_a ${WORK_DIR}/report_maxwe_a.events.jsonl)
set(ev_b ${WORK_DIR}/report_maxwe_b.events.jsonl)
set(ev_freep ${WORK_DIR}/report_freep.events.jsonl)
set(md_out ${WORK_DIR}/report_postmortem.md)
file(REMOVE ${ev_a} ${ev_b} ${ev_freep} ${md_out})

set(common --attack uaa --lines 2048 --regions 128 --endurance-mean 1000
    --seed 42)

# The same UAA run twice: the decision logs must be byte-identical.
foreach(out ${ev_a} ${ev_b})
  execute_process(
    COMMAND ${TOOL} ${common} --spare maxwe --events-out ${out}
    RESULT_VARIABLE run_result OUTPUT_QUIET)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR "maxwe events run failed: ${run_result}")
  endif()
endforeach()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${ev_a} ${ev_b}
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "two identical runs wrote different event logs")
endif()

# The log leads with its schema header.
file(STRINGS ${ev_a} first_line LIMIT_COUNT 1)
if(NOT first_line MATCHES "\"type\":\"schema\"" OR
   NOT first_line MATCHES "\"v\":1")
  message(FATAL_ERROR "event log does not start with the v1 schema header: "
          "${first_line}")
endif()

# A FreeP run under the same attack, for the comparison report.
execute_process(
  COMMAND ${TOOL} ${common} --spare freep --events-out ${ev_freep}
  RESULT_VARIABLE freep_result OUTPUT_QUIET)
if(NOT freep_result EQUAL 0)
  message(FATAL_ERROR "freep events run failed: ${freep_result}")
endif()

# maxwe_report renders the post-mortem (terminal + Markdown + comparison).
execute_process(
  COMMAND ${REPORT} --events ${ev_a} --compare ${ev_freep} --md ${md_out}
  RESULT_VARIABLE report_result OUTPUT_VARIABLE report_out)
if(NOT report_result EQUAL 0)
  message(FATAL_ERROR "maxwe_report failed: ${report_result}")
endif()
foreach(needle "Rescue attribution" "Gini" "Failure causes"
        "Side-by-side comparison")
  if(NOT report_out MATCHES "${needle}")
    message(FATAL_ERROR "report is missing its '${needle}' section:\n"
            "${report_out}")
  endif()
endforeach()
if(NOT EXISTS ${md_out})
  message(FATAL_ERROR "maxwe_report did not write the Markdown report")
endif()
file(READ ${md_out} md_body)
if(NOT md_body MATCHES "## Rescue attribution")
  message(FATAL_ERROR "Markdown report lacks the rescue-attribution section")
endif()

# Interrupted-then-resumed stochastic run: the event log must be
# byte-identical to an uninterrupted run. The reference checkpoints at the
# same cadence (checkpoint boundaries are themselves recorded events).
set(stoch --mode stochastic --lines 512 --regions 32 --endurance-mean 300
    --spare maxwe --seed 7)
set(ev_ref ${WORK_DIR}/report_resume_ref.events.jsonl)
set(ev_res ${WORK_DIR}/report_resume.events.jsonl)
set(ckpt_ref ${WORK_DIR}/report_resume_ref.ckpt)
set(ckpt_res ${WORK_DIR}/report_resume.ckpt)
file(REMOVE ${ev_ref} ${ev_res} ${ckpt_ref} ${ckpt_res})

execute_process(
  COMMAND ${TOOL} ${stoch} --events-out ${ev_ref}
          --checkpoint-out ${ckpt_ref} --checkpoint-interval 2000
  RESULT_VARIABLE ref_result OUTPUT_QUIET)
if(NOT ref_result EQUAL 0)
  message(FATAL_ERROR "uninterrupted events run failed: ${ref_result}")
endif()

execute_process(
  COMMAND ${TOOL} ${stoch} --events-out ${ev_res} --max-writes 5000
          --checkpoint-out ${ckpt_res} --checkpoint-interval 2000
  RESULT_VARIABLE cap_result OUTPUT_QUIET)
if(NOT cap_result EQUAL 0)
  message(FATAL_ERROR "capped events run failed: ${cap_result}")
endif()
execute_process(
  COMMAND ${TOOL} ${stoch} --events-out ${ev_res}
          --checkpoint-out ${ckpt_res} --checkpoint-interval 2000 --resume
  RESULT_VARIABLE res_result OUTPUT_QUIET)
if(NOT res_result EQUAL 0)
  message(FATAL_ERROR "resumed events run failed: ${res_result}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${ev_ref} ${ev_res}
                RESULT_VARIABLE resume_same)
if(NOT resume_same EQUAL 0)
  message(FATAL_ERROR "resumed run's event log differs from the "
          "uninterrupted run's")
endif()
