// fleet-report: population post-mortem for fleet_sim campaigns.
//
// Ingests one or more fleet-result JSON files and renders the population
// view of the paper's endurance claim: lifetime percentiles (p1/p50/p99),
// the failure-cause histogram from the decision-event taxonomy, the
// wear-Gini distribution across the fleet, and exemplar worst/best devices
// with their seeds for exact single-device replay.
//
//   fleet_report --fleet fleet_maxwe.json
//   fleet_report --fleet fleet_maxwe.json --compare fleet_freep.json,fleet_none.json
//   fleet_report --fleet fleet.json --md fleet.md
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "obs/profile_report.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using nvmsec::Cell;
using nvmsec::Table;
using nvmsec::minijson::JsonValue;
using nvmsec::minijson::parse_json;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct SummaryStats {
  double count{0}, mean{0}, stddev{0}, min{0}, max{0};
  double p1{0}, p5{0}, p25{0}, p50{0}, p75{0}, p95{0}, p99{0};
};

struct Exemplar {
  double device{0}, seed{0}, normalized{0};
};

struct HistBucket {
  double lo{0}, hi{0}, count{0};
};

/// One parsed fleet-result file.
struct FleetDoc {
  std::string path;
  // spec
  double devices_spec{0}, seed_start{0}, shard_size{0};
  std::string mode, attack, wl, spare;
  double spare_fraction{0}, lines{0}, regions{0};
  std::string mix;  // rendered attack mix, empty when none
  // Batched-sampling fields; absent in files from older fleet_sim builds.
  bool has_fastpath{false};
  bool fastpath{true};
  std::string sampling_contract;
  // Detector fields; absent in files from older fleet_sim builds.
  std::string attack_phases;
  bool detect{false}, adaptive{false};
  bool has_detector{false};
  double devices_alarmed{0};
  SummaryStats alarms_raised, windows_in_alarm, cadence_changes;
  // result
  bool complete{true};
  double shards_done{0}, shards_total{0};
  double devices{0}, truncated_logs{0};
  SummaryStats lifetime, user_writes, wear_gini;
  std::vector<HistBucket> lifetime_hist;
  double hist_underflow{0}, hist_overflow{0};
  std::map<std::string, double> failure_causes;
  std::vector<Exemplar> worst, best, sample;
};

SummaryStats parse_summary(const JsonValue& v) {
  SummaryStats s;
  s.count = v.num("count");
  s.mean = v.num("mean");
  s.stddev = v.num("stddev");
  s.min = v.num("min");
  s.max = v.num("max");
  s.p1 = v.num("p1");
  s.p5 = v.num("p5");
  s.p25 = v.num("p25");
  s.p50 = v.num("p50");
  s.p75 = v.num("p75");
  s.p95 = v.num("p95");
  s.p99 = v.num("p99");
  return s;
}

std::vector<Exemplar> parse_exemplars(const JsonValue& v) {
  std::vector<Exemplar> out;
  for (const JsonValue& e : v.array) {
    Exemplar ex;
    ex.device = e.num("device");
    ex.seed = e.num("seed");
    ex.normalized = e.num("normalized");
    out.push_back(ex);
  }
  return out;
}

FleetDoc load_fleet(const std::string& path) {
  const JsonValue doc = parse_json(read_file(path));
  if (const JsonValue* type = doc.find("type");
      type == nullptr || !type->is_string() || type->string != "fleet_result") {
    throw std::runtime_error(path + ": not a fleet_result JSON file");
  }
  if (doc.num("v") != 1) {
    throw std::runtime_error(path + ": unsupported fleet_result version");
  }

  FleetDoc f;
  f.path = path;
  const JsonValue& spec = doc.at("spec");
  f.devices_spec = spec.num("devices");
  f.seed_start = spec.num("seed_start");
  f.shard_size = spec.num("shard_size");
  f.mode = spec.str("mode");
  f.attack = spec.str("attack");
  f.wl = spec.str("wl");
  f.spare = spec.str("spare");
  f.spare_fraction = spec.num("spare_fraction");
  f.lines = spec.num("lines");
  f.regions = spec.num("regions");
  if (const JsonValue* mix = spec.find("attack_mix");
      mix != nullptr && mix->is_array() && !mix->array.empty()) {
    std::ostringstream os;
    for (std::size_t i = 0; i < mix->array.size(); ++i) {
      if (i > 0) os << ", ";
      os << mix->array[i].str("attack") << ":" << mix->array[i].num("weight");
    }
    f.mix = os.str();
  }
  if (const JsonValue* fast = spec.find("fastpath");
      fast != nullptr && fast->is_bool()) {
    f.has_fastpath = true;
    f.fastpath = fast->boolean;
  }
  if (const JsonValue* contract = spec.find("sampling_contract");
      contract != nullptr && contract->is_string()) {
    f.sampling_contract = contract->string;
  }
  if (const JsonValue* phases = spec.find("attack_phases");
      phases != nullptr && phases->is_string()) {
    f.attack_phases = phases->string;
  }
  if (const JsonValue* detect = spec.find("detect");
      detect != nullptr && detect->is_bool()) {
    f.detect = detect->boolean;
  }
  if (const JsonValue* adaptive = spec.find("adaptive");
      adaptive != nullptr && adaptive->is_bool()) {
    f.adaptive = adaptive->boolean;
  }

  const JsonValue* complete = doc.find("complete");
  f.complete = complete == nullptr || complete->boolean;
  f.shards_done = doc.num("shards_done");
  f.shards_total = doc.num("shards_total");
  f.devices = doc.num("devices");
  f.truncated_logs = doc.num("truncated_logs");
  f.lifetime = parse_summary(doc.at("lifetime"));
  f.user_writes = parse_summary(doc.at("user_writes"));
  f.wear_gini = parse_summary(doc.at("wear_gini"));
  if (const JsonValue* det = doc.find("detector");
      det != nullptr && det->is_object()) {
    f.has_detector = true;
    f.devices_alarmed = det->num("devices_alarmed");
    f.alarms_raised = parse_summary(det->at("alarms_raised"));
    f.windows_in_alarm = parse_summary(det->at("windows_in_alarm"));
    f.cadence_changes = parse_summary(det->at("cadence_changes"));
  }

  const JsonValue& hist = doc.at("lifetime_hist");
  f.hist_underflow = hist.num("underflow");
  f.hist_overflow = hist.num("overflow");
  for (const JsonValue& b : hist.at("buckets").array) {
    if (b.array.size() != 3) {
      throw std::runtime_error(path + ": malformed histogram bucket");
    }
    f.lifetime_hist.push_back(
        {b.array[0].number, b.array[1].number, b.array[2].number});
  }
  for (const auto& [cause, count] : doc.at("failure_causes").object) {
    f.failure_causes[cause] = count.number;
  }
  f.worst = parse_exemplars(doc.at("worst"));
  f.best = parse_exemplars(doc.at("best"));
  f.sample = parse_exemplars(doc.at("sample"));
  return f;
}

std::string fmt(double v, int digits = 4) {
  std::ostringstream os;
  if (std::isinf(v)) return "inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << v;
  }
  return os.str();
}

std::string pct(double v) { return fmt(100.0 * v, 2) + "%"; }

/// Terminal/Markdown dual renderer (same shape as maxwe_report's).
class Renderer {
 public:
  Renderer(std::ostream& os, bool md) : os_(os), md_(md) {}

  void title(const std::string& t) {
    if (md_) {
      os_ << "# " << t << "\n\n";
    } else {
      os_ << t << "\n" << std::string(t.size(), '=') << "\n\n";
    }
  }
  void heading(const std::string& h) {
    if (md_) {
      os_ << "## " << h << "\n\n";
    } else {
      os_ << "== " << h << " ==\n";
    }
  }
  void text(const std::string& t) { os_ << t << "\n"; }
  void block(const std::string& body) {
    if (md_) os_ << "```text\n";
    os_ << body;
    if (body.empty() || body.back() != '\n') os_ << "\n";
    if (md_) os_ << "```\n";
    os_ << "\n";
  }
  void table(const Table& t) { block(t.ascii()); }

 private:
  std::ostream& os_;
  bool md_;
};

void add_summary_rows(Table& t, const std::string& name,
                      const SummaryStats& s, bool as_pct) {
  const auto v = [as_pct](double x) { return as_pct ? pct(x) : fmt(x, 4); };
  t.add_row({name + " p1", v(s.p1)});
  t.add_row({name + " p50", v(s.p50)});
  t.add_row({name + " p99", v(s.p99)});
  t.add_row({name + " mean", v(s.mean)});
  t.add_row({name + " stddev", v(s.stddev)});
  t.add_row({name + " min", v(s.min)});
  t.add_row({name + " max", v(s.max)});
}

void render_fleet(Renderer& out, const FleetDoc& f) {
  Table spec({"field", "value"});
  spec.add_row({std::string("devices"), fmt(f.devices)});
  spec.add_row({std::string("scheme"), f.spare});
  spec.add_row({std::string("mode"), f.mode});
  spec.add_row({std::string("attack"),
                f.mix.empty() ? f.attack : "mix: " + f.mix});
  spec.add_row({std::string("wear leveler"), f.wl});
  if (f.has_fastpath) {
    spec.add_row({std::string("fastpath"),
                  std::string(f.fastpath ? "on" : "off") +
                      (f.sampling_contract.empty()
                           ? ""
                           : " (" + f.sampling_contract + ")")});
  }
  if (!f.attack_phases.empty()) {
    spec.add_row({std::string("attack phases"), f.attack_phases});
  }
  if (f.detect) {
    spec.add_row({std::string("detector"),
                  std::string(f.adaptive ? "on (adaptive cadence)" : "on")});
  }
  spec.add_row({std::string("spare fraction"), fmt(f.spare_fraction, 3)});
  spec.add_row({std::string("geometry"),
                fmt(f.lines) + " lines / " + fmt(f.regions) + " regions"});
  spec.add_row({std::string("seed stream"),
                fmt(f.seed_start) + " .. " +
                    fmt(f.seed_start + f.devices_spec - 1)});
  spec.add_row({std::string("shards"),
                fmt(f.shards_done) + " / " + fmt(f.shards_total)});
  out.heading("Population");
  out.table(spec);
  if (!f.complete) {
    out.text("WARNING: campaign incomplete (" + fmt(f.shards_done) + "/" +
             fmt(f.shards_total) +
             " shards); numbers cover only the finished shards.\n");
  }
  if (f.truncated_logs > 0) {
    out.text("note: " + fmt(f.truncated_logs) +
             " device event logs hit the cap; their failure causes were "
             "classified from the lifetime result instead.\n");
  }

  out.heading("Lifetime distribution");
  Table life({"metric", "value"});
  add_summary_rows(life, "normalized lifetime", f.lifetime, /*as_pct=*/true);
  out.table(life);

  if (!f.lifetime_hist.empty()) {
    double peak = 1;
    for (const HistBucket& b : f.lifetime_hist) peak = std::max(peak, b.count);
    std::ostringstream chart;
    for (const HistBucket& b : f.lifetime_hist) {
      chart << "[" << fmt(b.lo, 6) << ", " << fmt(b.hi, 6) << ") "
            << std::string(
                   static_cast<std::size_t>(b.count / peak * 50.0), '#')
            << " " << fmt(b.count) << "\n";
    }
    if (f.hist_underflow > 0) {
      chart << "underflow: " << fmt(f.hist_underflow) << "\n";
    }
    if (f.hist_overflow > 0) {
      chart << "overflow: " << fmt(f.hist_overflow) << "\n";
    }
    out.heading("Lifetime histogram (log-spaced buckets)");
    out.block(chart.str());
  }

  out.heading("Failure causes");
  Table causes({"cause", "devices", "share"});
  for (const auto& [cause, count] : f.failure_causes) {
    causes.add_row({cause, fmt(count),
                    f.devices > 0 ? pct(count / f.devices) : "-"});
  }
  out.table(causes);

  out.heading("Wear balance across the fleet");
  if (f.wear_gini.count > 0) {
    Table gini({"metric", "value"});
    add_summary_rows(gini, "wear Gini", f.wear_gini, /*as_pct=*/false);
    out.table(gini);
  } else {
    out.text("no per-device wear data (bit-level engine)\n");
  }

  // Population alarm statistics (only devices that ran a detector fold
  // into these summaries).
  if (f.has_detector && f.alarms_raised.count > 0) {
    out.heading("Attack detection across the fleet");
    Table det({"metric", "value"});
    det.add_row({std::string("devices with a detector"),
                 fmt(f.alarms_raised.count)});
    det.add_row({std::string("devices that raised an alarm"),
                 fmt(f.devices_alarmed) + " (" +
                     (f.alarms_raised.count > 0
                          ? pct(f.devices_alarmed / f.alarms_raised.count)
                          : "-") +
                     ")"});
    add_summary_rows(det, "alarms raised", f.alarms_raised,
                     /*as_pct=*/false);
    add_summary_rows(det, "windows in alarm", f.windows_in_alarm,
                     /*as_pct=*/false);
    if (f.adaptive) {
      add_summary_rows(det, "cadence changes", f.cadence_changes,
                       /*as_pct=*/false);
    }
    out.table(det);
  }

  const auto exemplar_table = [](const std::vector<Exemplar>& items) {
    Table t({"device", "seed", "normalized lifetime"});
    for (const Exemplar& e : items) {
      t.add_row({fmt(e.device), fmt(e.seed), pct(e.normalized)});
    }
    return t;
  };
  out.heading("Worst devices (replay with fleet settings + --seed)");
  out.table(exemplar_table(f.worst));
  out.heading("Best devices");
  out.table(exemplar_table(f.best));
  if (!f.sample.empty()) {
    out.heading("Random exemplar sample");
    out.text("(unbiased hash-priority reservoir; replayable subsample)");
    out.table(exemplar_table(f.sample));
  }
}

void render_compare(Renderer& out, const std::vector<FleetDoc>& fleets) {
  out.heading("Scheme comparison");
  std::vector<std::string> header{"metric"};
  for (const FleetDoc& f : fleets) header.push_back(f.spare);
  Table cmp(header);
  const auto row = [&cmp, &fleets](const std::string& name, auto getter,
                                   bool as_pct) {
    std::vector<Cell> cells{name};
    for (const FleetDoc& f : fleets) {
      const double v = getter(f);
      cells.emplace_back(as_pct ? pct(v) : fmt(v, 4));
    }
    cmp.add_row(cells);
  };
  row("devices", [](const FleetDoc& f) { return f.devices; }, false);
  row("lifetime p1", [](const FleetDoc& f) { return f.lifetime.p1; }, true);
  row("lifetime p50", [](const FleetDoc& f) { return f.lifetime.p50; }, true);
  row("lifetime p99", [](const FleetDoc& f) { return f.lifetime.p99; }, true);
  row("lifetime mean", [](const FleetDoc& f) { return f.lifetime.mean; },
      true);
  row("wear Gini p50", [](const FleetDoc& f) { return f.wear_gini.p50; },
      false);
  bool any_detector = false;
  for (const FleetDoc& f : fleets) {
    any_detector = any_detector || (f.has_detector && f.alarms_raised.count > 0);
  }
  if (any_detector) {
    row("devices alarmed",
        [](const FleetDoc& f) { return f.devices_alarmed; }, false);
    row("alarms raised p50",
        [](const FleetDoc& f) { return f.alarms_raised.p50; }, false);
  }
  // Causes: union across fleets so a cause absent from one renders as 0.
  std::map<std::string, bool> all_causes;
  for (const FleetDoc& f : fleets) {
    for (const auto& [cause, count] : f.failure_causes) {
      all_causes[cause] = true;
    }
  }
  for (const auto& [cause, unused] : all_causes) {
    row("cause " + cause,
        [&cause](const FleetDoc& f) {
          const auto it = f.failure_causes.find(cause);
          return it == f.failure_causes.end() ? 0.0 : it->second;
        },
        false);
  }
  out.table(cmp);
  const double base = fleets.back().lifetime.p50;
  if (base > 0 && fleets.size() > 1) {
    std::ostringstream os;
    os << "p50 lifetime ratio vs " << fleets.back().spare << ":";
    for (std::size_t i = 0; i + 1 < fleets.size(); ++i) {
      os << " " << fleets[i].spare << "="
         << fmt(fleets[i].lifetime.p50 / base, 3);
    }
    out.text(os.str() + "\n");
  }
}

void render_profile_section(Renderer& out, const std::string& path) {
  const nvmsec::ProfileDoc doc = nvmsec::parse_profile(read_file(path));
  out.heading("Campaign self-profile (" + path + ")");
  std::ostringstream body;
  nvmsec::render_profile_summary(body, doc);
  out.block(body.str());
}

void render_all(Renderer& out, const std::vector<FleetDoc>& fleets,
                const std::string& profile_path) {
  out.title("Fleet post-mortem: " + fleets.front().path);
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    if (fleets.size() > 1) {
      out.heading("Fleet " + std::to_string(i + 1) + ": " + fleets[i].path);
    }
    render_fleet(out, fleets[i]);
  }
  if (!profile_path.empty()) render_profile_section(out, profile_path);
  if (fleets.size() > 1) render_compare(out, fleets);
}

}  // namespace

int main(int argc, char** argv) {
  using nvmsec::CliParser;

  CliParser cli(
      "fleet-report: population post-mortem of fleet_sim result files");
  cli.add_flag("fleet", "fleet-result JSON file (required)", "");
  cli.add_flag("compare",
               "comma-separated fleet-result files to compare against "
               "(e.g. Max-WE vs FreeP vs no-spare)", "");
  cli.add_flag("profile",
               "campaign self-profile JSON (fleet_sim --profile-out): adds "
               "top phases, cache hit rates and worker utilization", "");
  cli.add_flag("md", "also write the report as Markdown to this path", "");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  try {
    const std::string fleet_path = cli.get_string("fleet");
    if (fleet_path.empty()) {
      std::cerr << "error: --fleet is required\n";
      return 1;
    }
    std::vector<FleetDoc> fleets;
    fleets.push_back(load_fleet(fleet_path));
    std::istringstream compare(cli.get_string("compare"));
    std::string entry;
    while (std::getline(compare, entry, ',')) {
      if (!entry.empty()) fleets.push_back(load_fleet(entry));
    }

    const std::string profile_path = cli.get_string("profile");
    Renderer terminal(std::cout, /*md=*/false);
    render_all(terminal, fleets, profile_path);

    if (const std::string md_path = cli.get_string("md"); !md_path.empty()) {
      std::ofstream md_out(md_path, std::ios::binary);
      if (!md_out) {
        std::cerr << "error: cannot write " << md_path << "\n";
        return 1;
      }
      Renderer md(md_out, /*md=*/true);
      render_all(md, fleets, profile_path);
      std::cout << "markdown report: " << md_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
