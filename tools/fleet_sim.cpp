// fleet-sim: population-scale lifetime campaigns.
//
// Fans a device-population spec across worker threads, streams every
// per-device result into mergeable sketches (O(shards) memory, no
// per-device retention), and writes a deterministic fleet-result JSON for
// tools/fleet_report. Examples:
//
//   # 10k devices under UAA with Max-WE, 4 workers, live heartbeat
//   fleet_sim --devices 10000 --lines 2048 --regions 128
//             --endurance-mean 1000 --spare maxwe --jobs 4
//             --heartbeat-out /dev/stderr --out fleet_maxwe.json
//
//   # crash-safe 100k campaign: SIGKILL it, rerun the same line to resume
//   fleet_sim --devices 100000 --spare maxwe
//             --checkpoint-out fleet.ckpt --resume --out fleet.json
//
//   # mixed tenant population: 80% benign zipf, 20% BPA attackers
//   fleet_sim --devices 10000 --mode stochastic --wl tlsr --spare maxwe
//             --attack-mix "zipf:0.8,bpa:0.2" --out mix.json

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "obs/heartbeat.h"
#include "obs/profiler.h"
#include "sim/fleet.h"
#include "util/atomic_file.h"
#include "util/cli.h"
#include "util/log.h"

namespace {

// "zipf:0.8,bpa:0.2" -> AttackShare list. Whitespace-free, weight optional
// (defaults to 1, so "uaa,bpa" is an even split).
std::vector<nvmsec::AttackShare> parse_attack_mix(const std::string& text) {
  std::vector<nvmsec::AttackShare> mix;
  std::istringstream in(text);
  std::string entry;
  while (std::getline(in, entry, ',')) {
    if (entry.empty()) continue;
    nvmsec::AttackShare share;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      share.attack = entry;
    } else {
      share.attack = entry.substr(0, colon);
      share.weight = std::stod(entry.substr(colon + 1));
    }
    mix.push_back(std::move(share));
  }
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nvmsec;

  CliParser cli("fleet-sim: sharded device-population lifetime campaigns");
  cli.add_flag("devices", "population size", "1000");
  cli.add_flag("seed-start", "device i runs with seed seed-start + i", "1");
  cli.add_flag("shard-size",
               "devices per shard (aggregation/checkpoint granularity)",
               "256");
  cli.add_flag("jobs", "worker threads (0 = all cores, 1 = serial)", "1");
  cli.add_flag("mode", "event | stochastic | bit", "event");
  cli.add_flag("lines", "device size in lines (0 = paper 1 GB geometry)",
               "2048");
  cli.add_flag("regions", "region count (with --lines)", "128");
  cli.add_flag("endurance-mean", "endurance at mean current", "1000");
  cli.add_flag("endurance-exponent", "power-law exponent k (E ~ I^-k)", "8");
  cli.add_flag("jitter", "intra-region lognormal endurance jitter sigma",
               "0");
  cli.add_flag("attack", "uaa | bpa | hotspot | random | zipf | mixed",
               "uaa");
  cli.add_flag("attack-phases",
               "mixed-attack phase schedule 'name:writes,...' (k/m/g "
               "suffixes; writes 0 = terminal unbounded last phase, a "
               "bounded last phase cycles). Implies --attack mixed; "
               "stochastic mode only", "");
  cli.add_flag("attack-onset",
               "shorthand for --attack-phases 'zipf:N,uaa:0': benign zipf "
               "traffic for N writes, then a UAA that runs to failure "
               "(0 = off)", "0");
  cli.add_flag("attack-mix",
               "weighted population mix, e.g. 'zipf:0.8,bpa:0.2' "
               "(overrides --attack; per-device pick is a stateless hash, "
               "independent of sharding)", "");
  cli.add_flag("bpa-burst", "BPA burst length", "1024");
  cli.add_flag("zipf-skew", "zipf skew s", "0.99");
  cli.add_flag("hotspot-set", "hotspot working-set lines (>= 1)", "1");
  cli.add_switch("detect",
                 "per-device online attack detector (stochastic mode); "
                 "alarm stats stream into the population aggregate");
  cli.add_flag("detect-window",
               "detector window size in user writes", "16384");
  cli.add_switch("adaptive",
                 "self-tuning defense (needs --detect and a wear leveler): "
                 "retune the remap cadence from the alarm signal");
  cli.add_flag("adaptive-factor",
               "cadence multiplier per escalation step (> 1)", "2.0");
  cli.add_flag("adaptive-max-steps",
               "escalation bound in steps either direction", "3");
  cli.add_flag("wl", "none|startgap|tlsr|pcms|bwl|wawl|twl", "none");
  cli.add_flag("swap-interval", "wear-leveler remap cadence", "100");
  cli.add_flag("spare", "none | pcd | ps | ps-worst | freep | maxwe",
               "none");
  cli.add_flag("spare-fraction", "spare share of capacity", "0.10");
  cli.add_flag("swr-fraction", "Max-WE SWR share of spares", "0.90");
  cli.add_flag("max-writes", "stochastic: user-write cap per device "
                             "(0 = run to failure)", "0");
  cli.add_switch("no-fastpath",
                 "disable the batched fast path (stochastic mode). "
                 "Bit-identical either way for uaa/bpa populations; "
                 "distribution-equivalent for random/zipf (multiset-exact "
                 "for hotspot) — the campaign fingerprint then refuses "
                 "cross-mode --resume");
  cli.add_flag("payload", "bit mode: random|constant|fnw-adversarial|"
                          "complement", "random");
  cli.add_flag("codec", "bit mode: full|differential|fnw", "differential");
  cli.add_flag("ecp", "bit mode: ECP entries per line", "0");
  cli.add_flag("fault-stuck-at",
               "device fault: lines that die on their first write", "0");
  cli.add_flag("fault-early-death",
               "device fault: lines with a fraction of mapped endurance",
               "0");
  cli.add_flag("fault-early-death-fraction",
               "remaining endurance fraction for early-death lines", "0.01");
  cli.add_flag("fault-outlier-regions",
               "device fault: regions with scaled true endurance", "0");
  cli.add_flag("fault-outlier-factor",
               "endurance scale factor for outlier regions", "0.25");
  cli.add_flag("fault-seed", "fault-injection RNG seed", "99540903");
  cli.add_flag("event-log-cap",
               "per-device in-memory event cap; beyond it the failure "
               "cause falls back to the result classification", "65536");
  cli.add_flag("out", "fleet-result JSON path (default: stdout)", "");
  cli.add_flag("checkpoint-out",
               "crash-safe campaign checkpoint (per-shard sketch state, "
               "rewritten after every completed shard)", "");
  cli.add_switch("resume",
                 "resume from --checkpoint-out if it exists, else start "
                 "fresh");
  cli.add_flag("heartbeat-out",
               "live progress JSONL (devices/sec, ETA, running p50/p99, "
               "shard throughput, worker utilization)",
               "");
  cli.add_flag("profile-out",
               "write the campaign's aggregate self-profile JSON here "
               "(phase timings, counters, worker utilization; wall-clock, "
               "so excluded from byte-identity — feed to maxwe_profile)",
               "");
  cli.add_flag("heartbeat-interval",
               "completed devices between heartbeat lines", "1000");
  cli.add_flag("stop-after-shards",
               "stop after N newly-run shards (test hook: deterministic "
               "preemption; 0 = run to completion)", "0");
  cli.add_switch("verbose", "info-level logging");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  try {
    if (cli.get_bool("verbose")) set_log_level(LogLevel::kInfo);

    FleetSpec spec;
    spec.devices = cli.get_uint("devices");
    spec.seed_start = cli.get_uint("seed-start");
    spec.shard_size = cli.get_uint("shard-size");
    spec.event_log_max_events = cli.get_uint("event-log-cap");
    spec.attack_mix = parse_attack_mix(cli.get_string("attack-mix"));

    ExperimentConfig& base = spec.base;
    const std::uint64_t lines = cli.get_uint("lines");
    if (lines > 0) {
      base.geometry = DeviceGeometry::scaled(lines, cli.get_uint("regions"));
    }
    base.endurance.endurance_at_mean = cli.get_double("endurance-mean");
    base.endurance.endurance_exponent = cli.get_double("endurance-exponent");
    base.line_jitter_sigma = cli.get_double("jitter");
    base.attack = cli.get_string("attack");
    base.mixed_phases = cli.get_string("attack-phases");
    const std::uint64_t attack_onset = cli.get_uint("attack-onset");
    if (attack_onset > 0) {
      if (!base.mixed_phases.empty()) {
        std::cerr << "error: --attack-onset and --attack-phases are two "
                     "spellings of the same schedule; pick one\n";
        return 1;
      }
      base.mixed_phases = "zipf:" + std::to_string(attack_onset) + ",uaa:0";
    }
    if (!base.mixed_phases.empty()) base.attack = "mixed";
    base.bpa_burst = cli.get_uint("bpa-burst");
    base.zipf_skew = cli.get_double("zipf-skew");
    base.hotspot_working_set = cli.get_uint("hotspot-set");
    base.detect = cli.get_bool("detect");
    base.detector.window_writes = cli.get_uint("detect-window");
    base.adaptive = cli.get_bool("adaptive");
    base.adaptive_policy.escalate_factor = cli.get_double("adaptive-factor");
    base.adaptive_policy.max_steps =
        static_cast<std::uint32_t>(cli.get_uint("adaptive-max-steps"));
    base.wear_leveler = cli.get_string("wl");
    base.wl.swap_interval = cli.get_uint("swap-interval");
    base.spare_scheme = cli.get_string("spare");
    base.spare_fraction = cli.get_double("spare-fraction");
    base.swr_fraction = cli.get_double("swr-fraction");
    base.max_user_writes = cli.get_uint("max-writes");
    base.fastpath = !cli.get_bool("no-fastpath");
    base.fault.device.stuck_at_lines = cli.get_uint("fault-stuck-at");
    base.fault.device.early_death_lines = cli.get_uint("fault-early-death");
    base.fault.device.early_death_fraction =
        cli.get_double("fault-early-death-fraction");
    base.fault.device.outlier_regions =
        cli.get_uint("fault-outlier-regions");
    base.fault.device.outlier_factor = cli.get_double("fault-outlier-factor");
    base.fault.seed = cli.get_uint("fault-seed");
    const std::string mode = cli.get_string("mode");
    if (mode == "stochastic") {
      base.mode = SimulationMode::kStochastic;
    } else if (mode == "bit") {
      base.mode = SimulationMode::kBitLevel;
      base.payload = cli.get_string("payload");
      base.codec = cli.get_string("codec");
      base.ecp_entries = static_cast<std::uint32_t>(cli.get_uint("ecp"));
    } else if (mode == "event") {
      base.mode = SimulationMode::kUniformEvent;
    } else {
      std::cerr << "error: unknown --mode '" << mode << "'\n";
      return 1;
    }

    FleetOptions options;
    options.jobs = static_cast<std::size_t>(cli.get_uint("jobs"));
    options.checkpoint_path = cli.get_string("checkpoint-out");
    options.resume = cli.get_bool("resume");
    options.stop_after_shards = cli.get_uint("stop-after-shards");
    if (options.resume && options.checkpoint_path.empty()) {
      std::cerr << "error: --resume needs --checkpoint-out\n";
      return 1;
    }

    std::ofstream heartbeat_file;
    std::unique_ptr<HeartbeatSink> heartbeat;
    if (const std::string path = cli.get_string("heartbeat-out");
        !path.empty()) {
      heartbeat_file.open(path, std::ios::trunc);
      if (!heartbeat_file) {
        std::cerr << "error: cannot open --heartbeat-out '" << path << "'\n";
        return 1;
      }
      heartbeat = std::make_unique<HeartbeatSink>(
          heartbeat_file, cli.get_uint("heartbeat-interval"));
      options.heartbeat = heartbeat.get();
    }

    std::unique_ptr<Profiler> profiler;
    const std::string profile_path = cli.get_string("profile-out");
    if (!profile_path.empty()) {
      profiler = std::make_unique<Profiler>();
      options.profiler = profiler.get();
    }

    const std::uint64_t campaign_start = Profiler::now_ns();
    const FleetResult result = run_fleet(spec, options);
    if (profiler) {
      AtomicFileWriter writer(profile_path);
      writer.open_status().throw_if_error();
      writer.stream() << profiler->to_json(Profiler::now_ns() -
                                           campaign_start);
      writer.commit().throw_if_error();
      std::cerr << "profile: " << profile_path << "\n";
    }
    const std::string json = fleet_result_json(spec, result);
    if (const std::string path = cli.get_string("out"); !path.empty()) {
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::cerr << "error: cannot open --out '" << path << "'\n";
        return 1;
      }
      out << json;
      if (!out.flush()) {
        std::cerr << "error: short write to '" << path << "'\n";
        return 1;
      }
      std::cerr << "fleet result: " << path << " (" << result.shards_done
                << "/" << result.shards_total << " shards)\n";
    } else {
      std::cout << json;
    }
    if (!result.complete()) {
      std::cerr << "campaign incomplete (" << result.shards_done << "/"
                << result.shards_total
                << " shards); rerun with --resume to finish\n";
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
