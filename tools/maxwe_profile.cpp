// maxwe-profile: render the self-profile JSON a run or campaign wrote via
// --profile-out (maxwe_sim / fleet_sim).
//
// Shows where the wall time went: a flat per-phase table (exact inclusive
// totals), the phase hierarchy with approximate self times, event counters
// with derived cache hit rates, and pool-worker utilization. The final
// "attributed: NN.N% of wall" line is the coverage gate the overhead bench
// checks.
//
//   maxwe_profile --profile run.profile.json
//   maxwe_profile --profile run.profile.json --compare baseline.json
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/profile_report.h"
#include "util/cli.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nvmsec;

  CliParser cli("maxwe-profile: self-profile viewer (phase time "
                "attribution, counters, worker utilization)");
  cli.add_flag("profile", "profile JSON written via --profile-out", "");
  cli.add_flag("compare",
               "baseline profile JSON: render per-phase and per-counter "
               "deltas (current - baseline) instead of the full view", "");
  cli.add_switch("summary",
                 "compact view: top phases, hit rates, utilization");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  try {
    const std::string path = cli.get_string("profile");
    if (path.empty()) {
      std::cerr << "error: --profile is required\n";
      return 1;
    }
    const ProfileDoc current = parse_profile(read_file(path));

    if (const std::string base = cli.get_string("compare"); !base.empty()) {
      const ProfileDoc baseline = parse_profile(read_file(base));
      render_profile_compare(std::cout, baseline, current);
      return 0;
    }
    if (cli.get_bool("summary")) {
      render_profile_summary(std::cout, current);
    } else {
      render_profile(std::cout, current);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
