# Checkpoint/resume acceptance check: a run that stops at a checkpoint and
# resumes must print a byte-identical result report to an uninterrupted run.
set(common --mode stochastic --lines 512 --regions 32 --endurance-mean 300
    --spare maxwe --seed 7)
set(ckpt ${WORK_DIR}/resume_test.ckpt)
file(REMOVE ${ckpt})

# Reference: one uninterrupted run.
execute_process(
  COMMAND ${TOOL} ${common}
  RESULT_VARIABLE ref_result OUTPUT_VARIABLE ref_out)
if(NOT ref_result EQUAL 0)
  message(FATAL_ERROR "reference run failed: ${ref_result}")
endif()

# Interrupted: same config capped mid-run, dropping checkpoints on the way.
execute_process(
  COMMAND ${TOOL} ${common} --max-writes 5000
          --checkpoint-out ${ckpt} --checkpoint-interval 2000
  RESULT_VARIABLE cap_result OUTPUT_VARIABLE cap_out)
if(NOT cap_result EQUAL 0)
  message(FATAL_ERROR "capped checkpointing run failed: ${cap_result}")
endif()
if(NOT EXISTS ${ckpt})
  message(FATAL_ERROR "capped run left no checkpoint at ${ckpt}")
endif()

# Resumed: pick the run back up from the checkpoint and finish it.
execute_process(
  COMMAND ${TOOL} ${common} --checkpoint-out ${ckpt} --resume
  RESULT_VARIABLE res_result OUTPUT_VARIABLE res_out)
if(NOT res_result EQUAL 0)
  message(FATAL_ERROR "resumed run failed: ${res_result}")
endif()

if(NOT res_out STREQUAL ref_out)
  message(FATAL_ERROR "resumed stdout differs from the uninterrupted run:\n"
          "--- reference ---\n${ref_out}\n--- resumed ---\n${res_out}")
endif()

# A checkpoint from a different configuration must be refused.
execute_process(
  COMMAND ${TOOL} ${common} --seed 8 --checkpoint-out ${ckpt} --resume
  RESULT_VARIABLE foreign_result ERROR_VARIABLE foreign_err)
if(foreign_result EQUAL 0)
  message(FATAL_ERROR "resume from a different config's checkpoint succeeded")
endif()
if(NOT foreign_err MATCHES "different configuration")
  message(FATAL_ERROR "refusal did not explain itself: ${foreign_err}")
endif()
