// maxwe-report: post-mortem analysis of a decision event log.
//
// Ingests the JSONL flight recorder a run wrote via --events-out and
// renders a human-readable account of *why* the device lived as long as it
// did: which spare lines rescued which raw lines, how many writes of
// lifetime each rescue bought, how the spare pool drained over time, how
// unequally the rescues were spread across regions, and what finally
// killed the run.
//
//   maxwe_report --events run.events.jsonl
//   maxwe_report --events maxwe.jsonl --compare freep.jsonl
//   maxwe_report --events run.events.jsonl --md postmortem.md \
//                --metrics run.json --snapshots run.snapshots.jsonl
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_parse.h"
#include "obs/profile_report.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using nvmsec::Cell;
using nvmsec::Histogram;
using nvmsec::Table;
using nvmsec::minijson::JsonValue;
using nvmsec::minijson::parse_json;
using nvmsec::minijson::parse_jsonl;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One spare-line rescue: a dynamic replacement decision recorded by the
/// scheme (Max-WE rmt_redirect / asr_alloc, FreeP spare_alloc).
struct Rescue {
  double t{0};
  std::string kind;
  std::int64_t spare_region{-1};  // -1: pool without region structure
  std::int64_t raw_line{-1};
  double writes_bought{0};
};

/// One closed detection window (a detect_window event): the raw signals
/// the ROC sweep re-thresholds, plus the detector's own verdict.
struct DetectWindow {
  double t{0};       // window end, in user writes
  double writes{0};  // writes covered by the window
  double uniformity{0}, occupancy{0}, sequential{0};
  bool anomalous{false};
  std::string kind, level;
};

/// An alarm transition (alarm_raised / alarm_cleared).
struct AlarmEvent {
  double t{0};
  bool raised{false};
  std::string kind;  // raised only
};

/// One adaptive cadence retune (a cadence_change event).
struct CadenceEvent {
  double t{0};
  double old_interval{0}, new_interval{0}, step{0};
};

/// Everything the report derives from one run's slice of the event log.
struct RunReport {
  // run_start metadata.
  bool has_meta{false};
  std::string mode, attack, wear_leveler, spare;
  double seed{0}, lines{0}, regions{0};
  double spare_fraction{0}, swr_fraction{0};
  bool detect_enabled{false}, adaptive_enabled{false};

  // Detector post-mortem inputs.
  std::string attack_schedule;  // attack_phases ground truth ("" = none)
  std::vector<DetectWindow> windows;
  std::vector<AlarmEvent> alarms;
  std::vector<CadenceEvent> cadence;

  // spare_roles metadata (scheme-dependent fields; -1 = absent).
  double swr_regions{-1}, rwr_regions{-1}, asr_regions{-1};
  double user_lines{-1}, pool_lines{-1};

  std::vector<Rescue> rescues;
  double end_t{0};
  std::string outcome{"(no run_end event)"};
  double line_deaths{0};
  std::uint64_t pool_exhausted{0};
  std::uint64_t region_wear_outs{0};
  std::uint64_t checkpoints{0};
  std::uint64_t scrubs{0};
  double scrub_repaired{0}, scrub_rmt{0}, scrub_lmt{0};
  std::map<std::string, std::uint64_t> eol_causes;
  bool truncated{false};
  double truncated_dropped{0};

  /// Rescues per raw-line region, for the wear-inequality stats.
  std::vector<double> region_rescues;

  [[nodiscard]] double rescue_gini() const {
    return region_rescues.empty() ? 0.0 : nvmsec::gini(region_rescues);
  }
  [[nodiscard]] double rescue_max_min() const {
    return region_rescues.empty() ? 1.0
                                  : nvmsec::max_min_ratio(region_rescues);
  }
};

double opt_num(const JsonValue& e, std::string_view key, double fallback) {
  const JsonValue* v = e.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

/// Split an event stream into runs (a run_start begins a new run; events
/// before the first run_start join the first run) and fold each event into
/// its run's report.
std::vector<RunReport> build_reports(const std::vector<JsonValue>& events) {
  std::vector<RunReport> runs;
  auto current = [&runs]() -> RunReport& {
    if (runs.empty()) runs.emplace_back();
    return runs.back();
  };

  for (const JsonValue& e : events) {
    const std::string& type = e.str("type");
    if (type == "schema") {
      const double v = e.num("v");
      if (v != 1) {
        throw std::runtime_error("unsupported event schema version " +
                                 std::to_string(v));
      }
      continue;
    }
    if (type == "run_start") {
      if (!runs.empty() && runs.back().has_meta) runs.emplace_back();
      RunReport& r = current();
      r.has_meta = true;
      r.mode = e.str("mode");
      r.attack = e.str("attack");
      r.wear_leveler = e.str("wear_leveler");
      r.spare = e.str("spare");
      r.seed = e.num("seed");
      r.lines = e.num("lines");
      r.regions = e.num("regions");
      r.spare_fraction = e.num("spare_fraction");
      r.swr_fraction = e.num("swr_fraction");
      r.detect_enabled = opt_num(e, "detect", 0) != 0;
      r.adaptive_enabled = opt_num(e, "adaptive", 0) != 0;
      if (r.regions > 0) {
        r.region_rescues.assign(static_cast<std::size_t>(r.regions), 0.0);
      }
      continue;
    }

    RunReport& r = current();
    const double t = e.num("t");
    r.end_t = std::max(r.end_t, t);
    if (type == "spare_roles") {
      r.swr_regions = opt_num(e, "swr_regions", -1);
      r.rwr_regions = opt_num(e, "rwr_regions", -1);
      r.asr_regions = opt_num(e, "asr_regions", -1);
      r.user_lines = opt_num(e, "user_lines", -1);
      r.pool_lines =
          opt_num(e, "asr_pool_lines", opt_num(e, "pool_lines", -1));
    } else if (type == "rmt_redirect" || type == "asr_alloc" ||
               type == "spare_alloc") {
      Rescue rescue;
      rescue.t = t;
      rescue.kind = type;
      rescue.spare_region =
          static_cast<std::int64_t>(opt_num(e, "spare_region", -1));
      rescue.raw_line = static_cast<std::int64_t>(opt_num(e, "raw_line", -1));
      r.rescues.push_back(rescue);
      if (!r.region_rescues.empty() && r.lines > 0 && rescue.raw_line >= 0) {
        const auto lines_per_region =
            static_cast<std::int64_t>(r.lines / r.regions);
        const auto region = static_cast<std::size_t>(
            rescue.raw_line / std::max<std::int64_t>(1, lines_per_region));
        if (region < r.region_rescues.size()) r.region_rescues[region] += 1;
      }
    } else if (type == "pool_exhausted") {
      ++r.pool_exhausted;
    } else if (type == "region_wear_out") {
      ++r.region_wear_outs;
    } else if (type == "checkpoint") {
      ++r.checkpoints;
    } else if (type == "scrub") {
      ++r.scrubs;
      r.scrub_rmt += opt_num(e, "rmt_corrupt", 0);
      r.scrub_lmt += opt_num(e, "lmt_corrupt", 0);
      r.scrub_repaired += opt_num(e, "repaired", 0);
    } else if (type == "attack_phases") {
      r.attack_schedule = e.str("schedule");
    } else if (type == "detect_window") {
      DetectWindow w;
      w.t = t;
      w.writes = e.num("writes");
      w.uniformity = e.num("uniformity");
      w.occupancy = e.num("occupancy");
      w.sequential = e.num("sequential");
      w.anomalous = e.num("anomalous") != 0;
      w.kind = e.str("kind");
      w.level = e.str("level");
      r.windows.push_back(std::move(w));
    } else if (type == "alarm_raised") {
      r.alarms.push_back({t, true, e.str("kind")});
    } else if (type == "alarm_cleared") {
      r.alarms.push_back({t, false, std::string()});
    } else if (type == "cadence_change") {
      r.cadence.push_back({t, e.num("old_interval"), e.num("new_interval"),
                           e.num("step")});
    } else if (type == "end_of_life") {
      ++r.eol_causes[e.str("cause")];
    } else if (type == "run_end") {
      r.outcome = e.str("outcome");
      r.end_t = std::max(r.end_t, e.num("user_writes"));
      r.line_deaths = opt_num(e, "line_deaths", 0);
    } else if (type == "log_truncated") {
      r.truncated = true;
      r.truncated_dropped += opt_num(e, "dropped", 0);
    }
    // pairing / asr_region / other detail events need no aggregation here.
  }

  // Attribute lifetime to rescues: each rescue "buys" the user writes until
  // the next rescue (the last one carries the run to its end).
  for (RunReport& r : runs) {
    std::stable_sort(
        r.rescues.begin(), r.rescues.end(),
        [](const Rescue& a, const Rescue& b) { return a.t < b.t; });
    for (std::size_t i = 0; i < r.rescues.size(); ++i) {
      const double next =
          i + 1 < r.rescues.size() ? r.rescues[i + 1].t : r.end_t;
      r.rescues[i].writes_bought = std::max(0.0, next - r.rescues[i].t);
    }
  }
  return runs;
}

std::string fmt(double v, int digits = 2) {
  std::ostringstream os;
  if (std::isinf(v)) return "inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << v;
  }
  return os.str();
}

/// One phase of the attack_phases ground-truth schedule.
struct PhaseSpan {
  std::string name;
  double writes{0};  // 0 = terminal unbounded
};

/// Parse the "name:writes,..." schedule an attack_phases event recorded
/// (k/m/g suffixes, writes 0 = terminal unbounded last phase).
std::vector<PhaseSpan> parse_schedule(const std::string& spec) {
  std::vector<PhaseSpan> phases;
  std::istringstream in(spec);
  std::string entry;
  while (std::getline(in, entry, ',')) {
    if (entry.empty()) continue;
    PhaseSpan p;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      p.name = entry;
    } else {
      p.name = entry.substr(0, colon);
      std::string w = entry.substr(colon + 1);
      double scale = 1;
      if (!w.empty()) {
        const char suffix = static_cast<char>(std::tolower(w.back()));
        if (suffix == 'k') scale = 1e3;
        if (suffix == 'm') scale = 1e6;
        if (suffix == 'g') scale = 1e9;
        if (scale != 1) w.pop_back();
      }
      if (!w.empty()) p.writes = std::stod(w) * scale;
    }
    phases.push_back(std::move(p));
  }
  return phases;
}

/// Benign phases: workload proxies, not attacks. Everything else counts
/// as ground-truth attack traffic for the detector scoring.
bool benign_phase(const std::string& name) {
  return name == "zipf" || name == "random";
}

/// Phase active at user-write time t. A bounded last phase cycles; a
/// 0-writes last phase is terminal and absorbs the rest of the run.
const std::string& phase_at(const std::vector<PhaseSpan>& phases, double t) {
  static const std::string empty;
  if (phases.empty()) return empty;
  double total = 0;
  for (const PhaseSpan& p : phases) total += p.writes;
  const bool cyclic = phases.back().writes > 0;
  if (cyclic && total > 0) t = std::fmod(t, total);
  for (const PhaseSpan& p : phases) {
    if (p.writes == 0 || t < p.writes) return p.name;
    t -= p.writes;
  }
  return phases.back().name;
}

/// Ground-truth label for a window: attack iff the phase active at its
/// midpoint is non-benign. No schedule -> fall back to the run's single
/// attack name (a pure-uaa detector run is all-attack, a zipf run is
/// all-benign).
bool window_is_attack(const RunReport& r,
                      const std::vector<PhaseSpan>& phases,
                      const DetectWindow& w) {
  if (phases.empty()) return !benign_phase(r.attack);
  return !benign_phase(phase_at(phases, w.t - w.writes / 2));
}

/// Renders both the terminal and the Markdown flavour: headings switch
/// between "== x ==" and "## x", tables and charts go into code fences.
class Renderer {
 public:
  Renderer(std::ostream& os, bool md) : os_(os), md_(md) {}

  void title(const std::string& t) {
    if (md_) {
      os_ << "# " << t << "\n\n";
    } else {
      os_ << t << "\n" << std::string(t.size(), '=') << "\n\n";
    }
  }
  void heading(const std::string& h) {
    if (md_) {
      os_ << "## " << h << "\n\n";
    } else {
      os_ << "== " << h << " ==\n";
    }
  }
  void text(const std::string& t) { os_ << t << "\n"; }
  void block(const std::string& body) {
    if (md_) os_ << "```text\n";
    os_ << body;
    if (body.empty() || body.back() != '\n') os_ << "\n";
    if (md_) os_ << "```\n";
    os_ << "\n";
  }
  void table(const Table& t) { block(t.ascii()); }

 private:
  std::ostream& os_;
  bool md_;
};

void render_run(Renderer& out, const RunReport& r, std::size_t top_n) {
  Table summary({"field", "value"});
  summary.add_row({std::string("scheme"), r.spare});
  summary.add_row({std::string("mode"), r.mode});
  summary.add_row({std::string("attack"), r.attack});
  summary.add_row({std::string("wear leveler"), r.wear_leveler});
  summary.add_row({std::string("seed"), fmt(r.seed)});
  summary.add_row({std::string("geometry"),
                   fmt(r.lines) + " lines / " + fmt(r.regions) + " regions"});
  summary.add_row({std::string("spare fraction"), fmt(r.spare_fraction, 3)});
  if (r.spare == "maxwe") {
    summary.add_row({std::string("swr fraction"), fmt(r.swr_fraction, 3)});
  }
  summary.add_row({std::string("user writes"), fmt(r.end_t)});
  summary.add_row({std::string("outcome"), r.outcome});
  summary.add_row({std::string("line deaths"), fmt(r.line_deaths)});
  summary.add_row(
      {std::string("rescues"), static_cast<std::int64_t>(r.rescues.size())});
  summary.add_row({std::string("checkpoints"),
                   static_cast<std::int64_t>(r.checkpoints)});
  out.heading("Run summary");
  out.table(summary);
  if (r.truncated) {
    out.text("WARNING: the event log hit its cap; " +
             fmt(r.truncated_dropped) +
             " decision events were dropped and every count below is a "
             "lower bound.\n");
  }

  if (r.user_lines >= 0) {
    Table roles({"role", "value"});
    if (r.swr_regions >= 0) {
      roles.add_row({std::string("SWR regions"), fmt(r.swr_regions)});
      roles.add_row({std::string("RWR regions"), fmt(r.rwr_regions)});
      roles.add_row({std::string("ASR regions"), fmt(r.asr_regions)});
    }
    roles.add_row({std::string("user lines"), fmt(r.user_lines)});
    if (r.pool_lines >= 0) {
      roles.add_row({std::string("spare-pool lines"), fmt(r.pool_lines)});
    }
    out.heading("Spare roles");
    out.table(roles);
  }

  // Rescue attribution: writes of lifetime each rescue bought, aggregated
  // by decision kind and by the spare region that supplied the line.
  out.heading("Rescue attribution");
  if (r.rescues.empty()) {
    out.text("no rescues recorded (the spare scheme never intervened)\n");
  } else {
    struct Agg {
      std::uint64_t count{0};
      double bought{0};
    };
    std::map<std::pair<std::string, std::int64_t>, Agg> by_source;
    double total_bought = 0;
    for (const Rescue& resc : r.rescues) {
      Agg& a = by_source[{resc.kind, resc.spare_region}];
      ++a.count;
      a.bought += resc.writes_bought;
      total_bought += resc.writes_bought;
    }
    Table attribution({"kind", "spare region", "rescues", "writes bought",
                       "share of lifetime"});
    for (const auto& [key, agg] : by_source) {
      const double share = r.end_t > 0 ? 100.0 * agg.bought / r.end_t : 0.0;
      attribution.add_row(
          {key.first,
           key.second < 0 ? std::string("pool") : fmt(double(key.second)),
           static_cast<std::int64_t>(agg.count), fmt(agg.bought),
           fmt(share, 1) + "%"});
    }
    out.table(attribution);
    out.text("total writes bought by rescues: " + fmt(total_bought) + " (" +
             fmt(r.end_t > 0 ? 100.0 * total_bought / r.end_t : 0.0, 1) +
             "% of lifetime)\n");

    std::vector<Rescue> top = r.rescues;
    std::stable_sort(top.begin(), top.end(),
                     [](const Rescue& a, const Rescue& b) {
                       return a.writes_bought > b.writes_bought;
                     });
    if (top.size() > top_n) top.resize(top_n);
    Table best({"at (user writes)", "kind", "raw line", "spare region",
                "writes bought"});
    for (const Rescue& resc : top) {
      best.add_row(
          {fmt(resc.t), resc.kind,
           resc.raw_line < 0 ? std::string("-") : fmt(double(resc.raw_line)),
           resc.spare_region < 0 ? std::string("pool")
                                 : fmt(double(resc.spare_region)),
           fmt(resc.writes_bought)});
    }
    out.heading("Top rescues by lifetime bought");
    out.table(best);
  }

  // Spare-consumption timeline: when in the run's life the scheme spent
  // its spare lines.
  if (!r.rescues.empty() && r.end_t > 0) {
    Histogram timeline(0, r.end_t, std::min<std::size_t>(20, std::max<std::size_t>(4, r.rescues.size())));
    for (const Rescue& resc : r.rescues) timeline.add(resc.t);
    out.heading("Spare consumption over time");
    out.text("(rescues per user-write interval)");
    out.block(timeline.ascii());
  }

  out.heading("Wear inequality");
  if (r.region_rescues.empty()) {
    out.text("no per-region rescue data (missing run_start geometry)\n");
  } else {
    Table ineq({"metric", "value"});
    ineq.add_row(
        {std::string("Gini of per-region rescues"), fmt(r.rescue_gini(), 4)});
    ineq.add_row({std::string("max/min per-region rescues"),
                  fmt(r.rescue_max_min(), 2)});
    out.table(ineq);
  }

  out.heading("Failure causes");
  Table causes({"event", "count"});
  for (const auto& [cause, count] : r.eol_causes) {
    causes.add_row({"end_of_life: " + cause,
                    static_cast<std::int64_t>(count)});
  }
  causes.add_row({std::string("pool_exhausted"),
                  static_cast<std::int64_t>(r.pool_exhausted)});
  causes.add_row({std::string("region_wear_out"),
                  static_cast<std::int64_t>(r.region_wear_outs)});
  out.table(causes);
  if (r.scrubs > 0) {
    out.text("scrubs: " + fmt(double(r.scrubs)) + " (RMT corrupt " +
             fmt(r.scrub_rmt) + ", LMT corrupt " + fmt(r.scrub_lmt) +
             ", repaired " + fmt(r.scrub_repaired) + ")\n");
  }
}

/// The attack-detector post-mortem: alarm timeline, detection latency and
/// false alarms against the attack_phases ground truth, an ROC sweep that
/// re-thresholds the raw per-window signals, and the adaptive cadence
/// trail.
void render_detector(Renderer& out, const RunReport& r) {
  out.heading("Attack detector");
  if (r.windows.empty()) {
    out.text("no detect_window events (run without --detect, or the log "
             "was truncated before the first window closed)\n");
    return;
  }
  const std::vector<PhaseSpan> phases = parse_schedule(r.attack_schedule);

  // Confusion counts at the detector's own per-window operating point and
  // at the hysteresis-filtered alarm level.
  std::uint64_t attack_windows = 0, benign_windows = 0;
  std::uint64_t raw_tp = 0, raw_fp = 0, alarm_tp = 0, alarm_fp = 0;
  double writes_in_alarm = 0, windows_in_alarm = 0, anomalous = 0;
  for (const DetectWindow& w : r.windows) {
    const bool attack = window_is_attack(r, phases, w);
    (attack ? attack_windows : benign_windows) += 1;
    if (w.anomalous) {
      ++anomalous;
      (attack ? raw_tp : raw_fp) += 1;
    }
    if (w.level == "under_attack") {
      windows_in_alarm += 1;
      writes_in_alarm += w.writes;
      (attack ? alarm_tp : alarm_fp) += 1;
    }
  }
  std::uint64_t raises = 0, clears = 0;
  for (const AlarmEvent& a : r.alarms) (a.raised ? raises : clears) += 1;

  Table summary({"metric", "value"});
  summary.add_row({std::string("windows closed"),
                   fmt(double(r.windows.size()))});
  summary.add_row({std::string("anomalous windows"), fmt(anomalous)});
  summary.add_row({std::string("alarms raised / cleared"),
                   fmt(double(raises)) + " / " + fmt(double(clears))});
  summary.add_row(
      {std::string("windows in alarm"),
       fmt(windows_in_alarm) + " (" +
           fmt(100.0 * windows_in_alarm / double(r.windows.size()), 1) +
           "% of windows)"});
  if (r.end_t > 0) {
    summary.add_row({std::string("lifetime in alarm"),
                     fmt(100.0 * writes_in_alarm / r.end_t, 1) + "%"});
  }
  if (!r.attack_schedule.empty()) {
    summary.add_row({std::string("ground-truth schedule"),
                     r.attack_schedule});
  }
  out.table(summary);

  // Detection latency: for each benign->attack onset in the first cycle,
  // the user writes from the onset to the first alarm raised at or after
  // it. False alarms are raises while ground truth says benign.
  if (!phases.empty() || !benign_phase(r.attack)) {
    std::vector<std::pair<double, std::string>> onsets;
    if (phases.empty()) {
      onsets.emplace_back(0.0, r.attack);
    } else {
      double at = 0;
      bool prev_benign = true;
      for (const PhaseSpan& p : phases) {
        if (!benign_phase(p.name) && prev_benign) onsets.emplace_back(at, p.name);
        prev_benign = benign_phase(p.name);
        if (p.writes == 0) break;
        at += p.writes;
      }
    }
    std::uint64_t false_alarms = 0;
    for (const AlarmEvent& a : r.alarms) {
      if (a.raised && phases.empty() && benign_phase(r.attack)) {
        ++false_alarms;
      } else if (a.raised && !phases.empty() &&
                 benign_phase(phase_at(phases, a.t))) {
        ++false_alarms;
      }
    }
    Table latency({"attack onset (user writes)", "phase", "first alarm",
                   "latency (writes)"});
    for (const auto& [at, name] : onsets) {
      const AlarmEvent* first = nullptr;
      for (const AlarmEvent& a : r.alarms) {
        if (a.raised && a.t >= at) {
          first = &a;
          break;
        }
      }
      latency.add_row({fmt(at), name,
                       first != nullptr ? fmt(first->t) : std::string("never"),
                       first != nullptr ? fmt(first->t - at)
                                        : std::string("-")});
    }
    out.heading("Detection latency");
    out.table(latency);
    out.text("false alarms (raised while ground truth benign): " +
             fmt(double(false_alarms)) + "\n");
  }

  // ROC sweep: re-threshold the raw signals post-mortem.
  // Sequential-fraction-above catches sweeps (UAA), occupancy-below
  // catches concentration (BPA / hotspot); uniformity-below is the
  // chi-square backstop for non-sequential sweeps. The shipped operating
  // point combines all three.
  if (attack_windows > 0 && benign_windows > 0) {
    Table roc({"threshold", "sequential>t TPR", "sequential>t FPR",
               "occupancy<t TPR", "occupancy<t FPR", "uniformity<t TPR",
               "uniformity<t FPR"});
    for (double thr = 0.05; thr < 1.0; thr += 0.10) {
      std::uint64_t s_tp = 0, s_fp = 0, o_tp = 0, o_fp = 0, u_tp = 0,
                    u_fp = 0;
      for (const DetectWindow& w : r.windows) {
        const bool attack = window_is_attack(r, phases, w);
        if (w.sequential > thr) (attack ? s_tp : s_fp) += 1;
        if (w.occupancy < thr) (attack ? o_tp : o_fp) += 1;
        if (w.uniformity < thr) (attack ? u_tp : u_fp) += 1;
      }
      roc.add_row({fmt(thr, 2),
                   fmt(double(s_tp) / double(attack_windows), 3),
                   fmt(double(s_fp) / double(benign_windows), 3),
                   fmt(double(o_tp) / double(attack_windows), 3),
                   fmt(double(o_fp) / double(benign_windows), 3),
                   fmt(double(u_tp) / double(attack_windows), 3),
                   fmt(double(u_fp) / double(benign_windows), 3)});
    }
    out.heading("ROC sweep (re-thresholded raw signals)");
    out.table(roc);
    out.text("shipped operating point: per-window TPR " +
             fmt(double(raw_tp) / double(attack_windows), 3) + ", FPR " +
             fmt(double(raw_fp) / double(benign_windows), 3) +
             "; after hysteresis TPR " +
             fmt(double(alarm_tp) / double(attack_windows), 3) + ", FPR " +
             fmt(double(alarm_fp) / double(benign_windows), 3) + "\n");
  }

  // Adaptive cadence trail: every retune the controller applied.
  if (r.adaptive_enabled || !r.cadence.empty()) {
    out.heading("Adaptive cadence changes");
    if (r.cadence.empty()) {
      out.text("none (alarm never committed, or the leveler has no "
               "cadence)\n");
    } else {
      Table trail({"at (user writes)", "interval", "step"});
      for (const CadenceEvent& c : r.cadence) {
        trail.add_row({fmt(c.t),
                       fmt(c.old_interval) + " -> " + fmt(c.new_interval),
                       fmt(c.step)});
      }
      out.table(trail);
    }
  }
}

void render_compare(Renderer& out, const RunReport& a, const RunReport& b) {
  out.heading("Side-by-side comparison");
  Table cmp({"metric", a.spare + " (A)", b.spare + " (B)"});
  const auto row = [&cmp](const std::string& name, const std::string& va,
                          const std::string& vb) {
    cmp.add_row({name, va, vb});
  };
  row("attack", a.attack, b.attack);
  row("wear leveler", a.wear_leveler, b.wear_leveler);
  row("seed", fmt(a.seed), fmt(b.seed));
  row("user writes", fmt(a.end_t), fmt(b.end_t));
  row("outcome", a.outcome, b.outcome);
  row("line deaths", fmt(a.line_deaths), fmt(b.line_deaths));
  row("rescues", fmt(double(a.rescues.size())),
      fmt(double(b.rescues.size())));
  row("pool exhausted", fmt(double(a.pool_exhausted)),
      fmt(double(b.pool_exhausted)));
  row("regions worn out", fmt(double(a.region_wear_outs)),
      fmt(double(b.region_wear_outs)));
  row("rescue Gini", fmt(a.rescue_gini(), 4), fmt(b.rescue_gini(), 4));
  row("rescue max/min", fmt(a.rescue_max_min(), 2),
      fmt(b.rescue_max_min(), 2));
  if (!a.windows.empty() || !b.windows.empty()) {
    row("detector windows", fmt(double(a.windows.size())),
        fmt(double(b.windows.size())));
    const auto raises = [](const RunReport& r) {
      double n = 0;
      for (const AlarmEvent& e : r.alarms) n += e.raised ? 1 : 0;
      return n;
    };
    row("alarms raised", fmt(raises(a)), fmt(raises(b)));
    row("cadence changes", fmt(double(a.cadence.size())),
        fmt(double(b.cadence.size())));
  }
  out.table(cmp);
  if (b.end_t > 0) {
    // With B as the static baseline this is the lifetime-recovered metric
    // the adaptive-defense bench gates on.
    out.text("lifetime ratio A/B: " + fmt(a.end_t / b.end_t, 3) + "\n");
  }
}

void render_metrics(Renderer& out, const std::string& path) {
  const JsonValue doc = parse_json(read_file(path));
  out.heading("Run metrics (" + path + ")");
  Table t({"kind", "name", "value"});
  for (const char* kind : {"counters", "gauges"}) {
    const JsonValue* group = doc.find(kind);
    if (group == nullptr || !group->is_object()) continue;
    for (const auto& [name, value] : group->object) {
      if (value.is_number()) {
        t.add_row({std::string(kind), name, fmt(value.number, 4)});
      }
    }
  }
  out.table(t);
}

void render_snapshots(Renderer& out, const std::string& path) {
  const std::vector<JsonValue> snaps = parse_jsonl(read_file(path));
  if (snaps.empty()) return;
  out.heading("Final wear snapshot (" + path + ")");
  // The last snapshot that carries a wear block describes end-of-run wear.
  const JsonValue* wear = nullptr;
  double at = 0;
  for (const JsonValue& s : snaps) {
    if (const JsonValue* w = s.find("wear"); w != nullptr && w->is_object()) {
      wear = w;
      at = opt_num(s, "user_writes", at);
    }
  }
  if (wear == nullptr) {
    out.text("no wear blocks in the snapshot file\n");
    return;
  }
  Table t({"metric", "value"});
  t.add_row({std::string("at user writes"), fmt(at)});
  t.add_row({std::string("utilization Gini"),
             fmt(opt_num(*wear, "utilization_gini", 0), 4)});
  t.add_row({std::string("worn-out lines"),
             fmt(opt_num(*wear, "worn_out_lines", 0))});
  t.add_row({std::string("max line utilization"),
             fmt(opt_num(*wear, "max_line_utilization", 0), 4)});
  t.add_row({std::string("min line utilization"),
             fmt(opt_num(*wear, "min_line_utilization", 0), 4)});
  if (const JsonValue* ru = wear->find("region_utilization");
      ru != nullptr && ru->is_array() && !ru->array.empty()) {
    std::vector<double> util;
    util.reserve(ru->array.size());
    for (const JsonValue& v : ru->array) util.push_back(v.number);
    t.add_row({std::string("region-utilization Gini"),
               fmt(nvmsec::gini(util), 4)});
    t.add_row({std::string("region-utilization max/min"),
               fmt(nvmsec::max_min_ratio(util), 2)});
  }
  out.table(t);
}

void render_profile_section(Renderer& out, const std::string& path) {
  const nvmsec::ProfileDoc doc = nvmsec::parse_profile(read_file(path));
  out.heading("Self-profile (" + path + ")");
  std::ostringstream body;
  nvmsec::render_profile_summary(body, doc);
  out.block(body.str());
}

std::vector<RunReport> load_reports(const std::string& path) {
  std::vector<RunReport> runs = build_reports(parse_jsonl(read_file(path)));
  if (runs.empty()) {
    throw std::runtime_error(path + ": no events to report on");
  }
  return runs;
}

void render_all(Renderer& out, const std::string& events_path,
                const std::vector<RunReport>& runs,
                const std::vector<RunReport>* other, std::size_t top_n,
                const std::string& metrics_path,
                const std::string& snapshots_path,
                const std::string& profile_path, bool force_detector) {
  out.title("Max-WE post-mortem: " + events_path);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs.size() > 1) {
      out.heading("Run " + std::to_string(i + 1) + " of " +
                  std::to_string(runs.size()));
    }
    render_run(out, runs[i], top_n);
    if (force_detector || runs[i].detect_enabled ||
        !runs[i].windows.empty()) {
      render_detector(out, runs[i]);
    }
  }
  if (!metrics_path.empty()) render_metrics(out, metrics_path);
  if (!snapshots_path.empty()) render_snapshots(out, snapshots_path);
  if (!profile_path.empty()) render_profile_section(out, profile_path);
  if (other != nullptr) render_compare(out, runs.front(), other->front());
}

}  // namespace

int main(int argc, char** argv) {
  using nvmsec::CliParser;

  CliParser cli(
      "maxwe-report: post-mortem analysis of a maxwe_sim decision event "
      "log (--events-out)");
  cli.add_flag("events", "event-log JSONL file (required)", "");
  cli.add_flag("compare",
               "second event log; adds a side-by-side comparison of the "
               "first run in each file", "");
  cli.add_flag("metrics", "metrics JSON from the same run (--metrics-out)",
               "");
  cli.add_flag("snapshots",
               "wear-snapshot JSONL from the same run (--snapshot-out)", "");
  cli.add_flag("profile",
               "self-profile JSON from the same run (--profile-out): adds "
               "top phases, cache hit rates and utilization", "");
  cli.add_flag("md", "also write the report as Markdown to this path", "");
  cli.add_flag("top", "rows in the top-rescues table", "10");
  cli.add_switch("detector",
                 "force the attack-detector section (alarm timeline, "
                 "detection latency, ROC sweep) even when the log carries "
                 "no detector events; auto-enabled when it does");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  try {
    const std::string events_path = cli.get_string("events");
    if (events_path.empty()) {
      std::cerr << "error: --events is required\n";
      return 1;
    }
    const std::size_t top_n = cli.get_uint("top");
    const std::string metrics_path = cli.get_string("metrics");
    const std::string snapshots_path = cli.get_string("snapshots");
    const std::string profile_path = cli.get_string("profile");

    const std::vector<RunReport> runs = load_reports(events_path);
    std::vector<RunReport> other;
    const std::string compare_path = cli.get_string("compare");
    if (!compare_path.empty()) other = load_reports(compare_path);
    const std::vector<RunReport>* other_ptr =
        compare_path.empty() ? nullptr : &other;

    const bool force_detector = cli.get_bool("detector");

    Renderer terminal(std::cout, /*md=*/false);
    render_all(terminal, events_path, runs, other_ptr, top_n, metrics_path,
               snapshots_path, profile_path, force_detector);

    if (const std::string md_path = cli.get_string("md"); !md_path.empty()) {
      std::ofstream md_out(md_path, std::ios::binary);
      if (!md_out) {
        std::cerr << "error: cannot write " << md_path << "\n";
        return 1;
      }
      Renderer md(md_out, /*md=*/true);
      render_all(md, events_path, runs, other_ptr, top_n, metrics_path,
                 snapshots_path, profile_path, force_detector);
      std::cout << "markdown report: " << md_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
