# Observability acceptance check: one full-size UAA/Max-WE run must yield
# (a) a metrics file with write/remap/wear-out counters and LMT/RMT gauges,
# (b) a Chrome-trace JSON array, and (c) at least two wear snapshots.
execute_process(
  COMMAND ${TOOL} --attack uaa --spare maxwe
          --metrics-out ${WORK_DIR}/obs_metrics.json
          --trace-out ${WORK_DIR}/obs_trace.json
          --snapshot-out ${WORK_DIR}/obs_wear.snapshots.jsonl
          --snapshot-interval 100000
  RESULT_VARIABLE run_result OUTPUT_VARIABLE run_out)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "instrumented run failed: ${run_result}")
endif()

# --- metrics ---------------------------------------------------------------
file(READ ${WORK_DIR}/obs_metrics.json metrics)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  foreach(key "engine.user_writes" "device.wear_outs" "spare.replacements")
    string(JSON v ERROR_VARIABLE err GET "${metrics}" counters "${key}")
    if(NOT err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "metrics missing counter ${key}: ${err}")
    endif()
  endforeach()
  foreach(key "spare.lmt_entries" "spare.rmt_entries")
    string(JSON v ERROR_VARIABLE err GET "${metrics}" gauges "${key}")
    if(NOT err STREQUAL "NOTFOUND")
      message(FATAL_ERROR "metrics missing gauge ${key}: ${err}")
    endif()
  endforeach()
else()
  foreach(key "engine.user_writes" "device.wear_outs" "spare.lmt_entries")
    if(NOT metrics MATCHES "\"${key}\"")
      message(FATAL_ERROR "metrics missing ${key}")
    endif()
  endforeach()
endif()

# --- trace -----------------------------------------------------------------
# Full JSON validation lives in the unit tests and the CI python step; here
# just assert the array structure and that wear-out events are present.
file(READ ${WORK_DIR}/obs_trace.json trace LIMIT 4096)
if(NOT trace MATCHES "^\\[")
  message(FATAL_ERROR "trace does not start a JSON array")
endif()
if(NOT trace MATCHES "\"ph\": \"")
  message(FATAL_ERROR "trace has no events")
endif()

# --- snapshots -------------------------------------------------------------
file(STRINGS ${WORK_DIR}/obs_wear.snapshots.jsonl snapshot_lines)
list(LENGTH snapshot_lines n_snapshots)
if(n_snapshots LESS 2)
  message(FATAL_ERROR "expected >= 2 wear snapshots, got ${n_snapshots}")
endif()
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  list(GET snapshot_lines 0 first_line)
  string(JSON v ERROR_VARIABLE err GET "${first_line}" spare lmt_entries)
  if(NOT err STREQUAL "NOTFOUND")
    message(FATAL_ERROR "snapshot line is not the expected JSON: ${err}")
  endif()
endif()
