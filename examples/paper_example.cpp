// Walk through the paper's Fig. 3 worked example interactively: a 7-region
// device whose endurance ordering is 2 < 3 < 5 < 1 < 6 < 0 < 4, showing the
// weak-priority / weak-strong-matching allocation, the RMT/LMT contents,
// and what happens on the two kinds of wear-out.
//
// Run: build/examples/paper_example

#include <cstdio>
#include <memory>

#include "core/maxwe.h"

int main() {
  using namespace nvmsec;

  // Region endurances chosen so the ascending order is 2,3,5,1,6,0,4 —
  // exactly Fig. 3's example. Three lines per region, as drawn.
  std::vector<Endurance> endurance(7);
  endurance[2] = 10;
  endurance[3] = 20;
  endurance[5] = 30;
  endurance[1] = 40;
  endurance[6] = 50;
  endurance[0] = 60;
  endurance[4] = 70;
  auto map = std::make_shared<EnduranceMap>(DeviceGeometry::scaled(21, 7),
                                            endurance);

  MaxWeParams params;
  params.spare_fraction = 3.0 / 7.0;  // three spare regions
  params.swr_fraction = 2.0 / 3.0;    // two of them region-mapped (SWRs)
  MaxWe maxwe(map, params);

  std::printf("Fig. 3 worked example (7 regions, 3 lines each)\n");
  std::printf("endurance order (weakest first): ");
  for (RegionId r : map->regions_weakest_first()) {
    std::printf("%llu ", static_cast<unsigned long long>(r.value()));
  }
  std::printf("\n\nallocation:\n  SWRs: ");
  for (RegionId r : maxwe.swr_regions()) {
    std::printf("region %llu  ", static_cast<unsigned long long>(r.value()));
  }
  std::printf("\n  RWRs: ");
  for (RegionId r : maxwe.rwr_regions()) {
    std::printf("region %llu  ", static_cast<unsigned long long>(r.value()));
  }
  std::printf("\n  additional spare: region %llu\n",
              static_cast<unsigned long long>(maxwe.asr_regions()[0].value()));

  std::printf("\nRMT (weak-strong matching):\n");
  for (const auto& [pra, sra] : maxwe.rmt().pairs()) {
    std::printf("  region %llu is rescued by region %llu\n",
                static_cast<unsigned long long>(pra.value()),
                static_cast<unsigned long long>(sra.value()));
  }

  // Wear out an RWR line: region 1, offset 2 = physical line 5.
  std::uint64_t rwr_idx = 0, user_idx = 0;
  for (std::uint64_t i = 0; i < maxwe.working_lines(); ++i) {
    if (maxwe.working_line(i).value() == 5) rwr_idx = i;
    if (maxwe.working_line(i).value() == 1) user_idx = i;
  }
  maxwe.on_wear_out(rwr_idx);
  std::printf(
      "\nwear-out of line 5 (region 1, offset 2 — an RWR line):\n"
      "  wot tag set, redirected to line %llu (paired SWR, same offset)\n",
      static_cast<unsigned long long>(maxwe.resolve(rwr_idx).value()));

  // Wear out a plain user line: region 0, offset 1 = physical line 1.
  maxwe.on_wear_out(user_idx);
  std::printf(
      "wear-out of line 1 (region 0 — outside the RWRs):\n"
      "  LMT entry added, redirected to line %llu (strongest spare line)\n",
      static_cast<unsigned long long>(maxwe.resolve(user_idx).value()));

  std::printf(
      "\nmapping state: %llu RMT pairs, %llu wear-out tags set, %llu LMT "
      "entries, %llu spare lines left\n",
      static_cast<unsigned long long>(maxwe.rmt().size()),
      static_cast<unsigned long long>(maxwe.rmt().tags_set()),
      static_cast<unsigned long long>(maxwe.lmt().size()),
      static_cast<unsigned long long>(maxwe.asr_pool_remaining()));
  return 0;
}
