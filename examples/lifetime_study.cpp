// Parameter-study example: sweep the spare fraction for every spare scheme
// and emit CSV ready for plotting — the workflow a systems researcher
// would actually run on top of this library.
//
// Run: build/examples/lifetime_study > study.csv
//      build/examples/lifetime_study --attack bpa --mode stochastic

#include <iostream>

#include "sim/experiment.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace nvmsec;

  CliParser cli("Spare-fraction sweep across spare schemes, CSV output");
  cli.add_flag("attack", "uaa (event engine) or bpa (stochastic)", "uaa");
  cli.add_flag("mode", "event or stochastic", "event");
  cli.add_flag("seeds", "seeds to average per point", "3");
  cli.add_flag("lines", "device lines for stochastic mode", "2048");
  cli.add_flag("regions", "regions for stochastic mode", "128");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  const int seeds = static_cast<int>(cli.get_int("seeds"));
  const bool stochastic = cli.get_string("mode") == "stochastic";

  Table table({"spare_fraction", "maxwe", "pcd", "ps", "ps_worst"});
  for (double p : {0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
    std::vector<Cell> row;
    row.emplace_back(p);
    for (const std::string scheme : {"maxwe", "pcd", "ps", "ps-worst"}) {
      double acc = 0;
      for (int s = 0; s < seeds; ++s) {
        ExperimentConfig c;
        if (stochastic) {
          c = scaled_stochastic_config(
              static_cast<std::uint64_t>(cli.get_int("lines")),
              static_cast<std::uint64_t>(cli.get_int("regions")), 5e4);
        }
        c.attack = cli.get_string("attack");
        if (c.attack != "uaa" && !stochastic) {
          std::cerr << "non-uniform attacks need --mode stochastic\n";
          return 1;
        }
        c.spare_fraction = p;
        c.spare_scheme = scheme;
        c.seed = 42 + static_cast<std::uint64_t>(s);
        acc += run_experiment(c).normalized;
      }
      const double pct = 100.0 * acc / seeds;
      row.emplace_back(pct);
    }
    table.add_row(std::move(row));
  }
  std::cout << table.csv();
  return 0;
}
