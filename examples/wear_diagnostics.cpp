// Wear-diagnostics example: look *inside* the device after a run.
//
// Runs a benign Zipf workload and the UAA attack against an unleveled and
// a TLSR-leveled device, then prints each run's endurance harvest and the
// Gini coefficient of per-line utilization. Wear leveling should crush the
// Gini for the skewed benign workload — and visibly fail to buy anything
// under UAA, whose wear is already uniform (§3.3.1, seen from the wear
// side instead of the lifetime side).
//
// Run: build/examples/wear_diagnostics

#include <cstdio>
#include <memory>

#include "attack/attack.h"
#include "attack/zipf.h"
#include "nvm/device.h"
#include "sim/engine.h"
#include "sim/wear_report.h"
#include "spare/spare_scheme.h"
#include "wearlevel/wear_leveler.h"

namespace {

using namespace nvmsec;

void run_case(const char* label, const std::string& attack_name,
              const std::string& wl_name) {
  Rng rng(3);
  EnduranceModelParams params;
  params.endurance_at_mean = 3000.0;
  const EnduranceModel model(params);
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::scaled(1024, 64), model, rng));
  Device device(map);
  auto spare = make_no_spare(map);

  std::unique_ptr<Attack> attack;
  if (attack_name == "zipf") {
    attack = make_zipf(1.1, spare->working_lines());
  } else {
    attack = make_attack(attack_name);
  }

  EnduranceView view(spare->working_lines());
  for (std::uint64_t i = 0; i < view.size(); ++i) {
    view[i] = map->line_endurance(spare->working_line(i));
  }
  WearLevelerParams wl_params;
  wl_params.swap_interval = 8;
  wl_params.tlsr_subregion_lines = 16;
  auto wl = make_wear_leveler(wl_name, spare->working_lines(), view,
                              wl_params, rng);

  Engine engine(device, *attack, *wl, *spare, rng);
  const LifetimeResult result = engine.run();
  const WearReport report = analyze_wear(device);
  std::printf("%-22s lifetime %6.2f%%  harvest %5.1f%%  gini %.3f\n", label,
              100 * result.normalized, 100 * report.harvest_fraction,
              report.utilization_gini);
}

}  // namespace

int main() {
  std::printf("workload x wear leveling, no spares (1024 lines, 64 regions)\n");
  run_case("zipf, unleveled", "zipf", "none");
  run_case("zipf + TLSR", "zipf", "tlsr");
  run_case("uaa, unleveled", "uaa", "none");
  run_case("uaa + TLSR", "uaa", "tlsr");
  std::printf(
      "\nreading: TLSR slashes the zipf run's wear inequality (gini) and "
      "multiplies its lifetime; under UAA the wear was already uniform, so "
      "leveling buys nothing — §3.3.1 observed from the wear side.\n");
  return 0;
}
