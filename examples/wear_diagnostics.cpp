// Wear-diagnostics example: look *inside* the device during and after a run
// with the obs subsystem.
//
// Runs a benign Zipf workload and the UAA attack against an unleveled and
// a TLSR-leveled device with the full observer attached: a MetricsRegistry
// collects the run's counters and gauges, and a SnapshotEmitter records a
// wear time series (harvest and Gini trajectories) that this program then
// summarises per run. Wear leveling should crush the Gini for the skewed
// benign workload — and visibly fail to buy anything under UAA, whose wear
// is already uniform (§3.3.1, seen from the wear side instead of the
// lifetime side).
//
// The same sinks back `maxwe_sim --metrics-out/--trace-out
// --snapshot-interval`; this example wires them up in-process instead so a
// policy experiment can consume the numbers directly.
//
// Run: build/examples/wear_diagnostics

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "attack/attack.h"
#include "attack/zipf.h"
#include "nvm/device.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/snapshot.h"
#include "sim/engine.h"
#include "sim/wear_report.h"
#include "spare/spare_scheme.h"
#include "wearlevel/wear_leveler.h"

namespace {

using namespace nvmsec;

void run_case(const char* label, const std::string& attack_name,
              const std::string& wl_name) {
  Rng rng(3);
  EnduranceModelParams params;
  params.endurance_at_mean = 3000.0;
  const EnduranceModel model(params);
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::scaled(1024, 64), model, rng));
  Device device(map);
  auto spare = make_no_spare(map);

  std::unique_ptr<Attack> attack;
  if (attack_name == "zipf") {
    attack = make_zipf(1.1, spare->working_lines());
  } else {
    attack = make_attack(attack_name);
  }

  EnduranceView view(spare->working_lines());
  for (std::uint64_t i = 0; i < view.size(); ++i) {
    view[i] = map->line_endurance(spare->working_line(i));
  }
  WearLevelerParams wl_params;
  wl_params.swap_interval = 8;
  wl_params.tlsr_subregion_lines = 16;
  auto wl = make_wear_leveler(wl_name, spare->working_lines(), view,
                              wl_params, rng);

  // Observer wiring, exactly what maxwe_sim does behind its --metrics-out /
  // --snapshot-interval flags: the engine publishes into these sinks and
  // the simulation result is bit-identical to an unobserved run.
  MetricsRegistry metrics;
  std::ostringstream snapshot_stream;
  SnapshotEmitter snapshots(snapshot_stream, /*interval=*/200'000);
  Observer obs;
  obs.metrics = &metrics;
  obs.snapshots = &snapshots;

  Engine engine(device, *attack, *wl, *spare, rng);
  engine.set_observer(obs);
  const LifetimeResult result = engine.run();
  const WearReport report = analyze_wear(device);

  // The counters the engine flushed at run end.
  const std::uint64_t device_writes =
      metrics.find_counter("engine.device_writes")->value();
  const std::uint64_t migrations =
      metrics.find_counter("wl.migration_writes")->value();
  std::printf(
      "%-22s lifetime %6.2f%%  harvest %5.1f%%  gini %.3f  "
      "migrations/write %.3f\n",
      label, 100 * result.normalized, 100 * report.harvest_fraction,
      report.utilization_gini,
      static_cast<double>(migrations) /
          static_cast<double>(device_writes > 0 ? device_writes : 1));

  // The snapshot series (one JSON object per line, the same JSONL the CLI
  // writes) shows the wear trajectory, not just the endpoint. Print its
  // length and the window the Gini moved through.
  std::size_t samples = 0;
  double first_gini = -1.0;
  double last_gini = -1.0;
  std::istringstream in(snapshot_stream.str());
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t pos = line.find("\"utilization_gini\": ");
    if (pos == std::string::npos) continue;
    ++samples;
    last_gini = std::stod(line.substr(pos + 20));
    if (first_gini < 0) first_gini = last_gini;
  }
  if (samples > 1) {
    std::printf("%-22s   gini trajectory over %zu snapshots: %.3f -> %.3f\n",
                "", samples, first_gini, last_gini);
  }
}

}  // namespace

int main() {
  std::printf("workload x wear leveling, no spares (1024 lines, 64 regions)\n");
  run_case("zipf, unleveled", "zipf", "none");
  run_case("zipf + TLSR", "zipf", "tlsr");
  run_case("uaa, unleveled", "uaa", "none");
  run_case("uaa + TLSR", "uaa", "tlsr");
  std::printf(
      "\nreading: TLSR slashes the zipf run's wear inequality (gini) and "
      "multiplies its lifetime; under UAA the wear was already uniform, so "
      "leveling buys nothing — §3.3.1 observed from the wear side. The "
      "migrations/write column (from the metrics registry) is the price "
      "paid for that leveling.\n");
  return 0;
}
