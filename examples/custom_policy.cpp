// Extending the library: plug a custom attack and a custom spare-line
// replacement scheme into the simulation pipeline.
//
// The example implements
//   * RampAttack     — an attacker that sweeps with a skewed stride, and
//   * MirrorSparing  — a toy scheme that reserves every 16th line and
//                      replaces failures round-robin,
// then runs them against Max-WE's machinery side by side.
//
// Run: build/examples/custom_policy

#include <cstdio>
#include <memory>
#include <vector>

#include "attack/attack.h"
#include "core/maxwe.h"
#include "nvm/device.h"
#include "sim/engine.h"
#include "spare/spare_scheme.h"
#include "wearlevel/none.h"

namespace {

using namespace nvmsec;

// A skewed sweep: visits even addresses twice as often as odd ones. Not a
// strong attack — the point is how little code an Attack needs.
class RampAttack final : public Attack {
 public:
  LogicalLineAddr next(Rng& /*rng*/, std::uint64_t user_lines) override {
    const std::uint64_t step = cursor_++;
    const std::uint64_t third = step % 3;
    const std::uint64_t base = (step / 3) * 2;
    // pattern: even, even+?, odd — evens get 2/3 of the traffic.
    const std::uint64_t addr =
        third < 2 ? base % user_lines : (base + 1) % user_lines;
    return LogicalLineAddr{addr};
  }
  [[nodiscard]] std::string name() const override { return "ramp"; }
  void reset() override { cursor_ = 0; }

 private:
  std::uint64_t cursor_{0};
};

// Reserve every 16th physical line as a spare; replace failures from that
// pool round-robin, ignoring endurance entirely (a deliberately naive
// counterpoint to Max-WE's weak-priority allocation).
class MirrorSparing final : public SpareScheme {
 public:
  explicit MirrorSparing(std::shared_ptr<const EnduranceMap> endurance)
      : endurance_(std::move(endurance)) {
    const std::uint64_t n = endurance_->geometry().num_lines();
    for (std::uint64_t l = 0; l < n; ++l) {
      (l % 16 == 15 ? pool_ : working_).push_back(static_cast<std::uint32_t>(l));
    }
    backing_ = working_;
  }

  [[nodiscard]] std::uint64_t working_lines() const override {
    return working_.size();
  }
  [[nodiscard]] PhysLineAddr working_line(std::uint64_t idx) const override {
    return PhysLineAddr{working_.at(idx)};
  }
  PhysLineAddr resolve(std::uint64_t idx) override {
    return PhysLineAddr{backing_.at(idx)};
  }
  bool on_wear_out(std::uint64_t idx) override {
    ++stats_.line_deaths;
    if (next_ >= pool_.size()) return false;
    backing_.at(idx) = pool_[next_++];
    ++stats_.replacements;
    return true;
  }
  [[nodiscard]] std::string name() const override { return "mirror"; }
  [[nodiscard]] SpareSchemeStats stats() const override {
    SpareSchemeStats s = stats_;
    s.spares_remaining = pool_.size() - next_;
    return s;
  }
  void reset() override {
    backing_ = working_;
    next_ = 0;
    stats_ = {};
  }

 private:
  std::shared_ptr<const EnduranceMap> endurance_;
  std::vector<std::uint32_t> working_;
  std::vector<std::uint32_t> pool_;
  std::vector<std::uint32_t> backing_;
  std::size_t next_{0};
  SpareSchemeStats stats_;
};

double run(Attack& attack, SpareScheme& spare,
           const std::shared_ptr<const EnduranceMap>& map) {
  Device device(map);
  NoWearLeveling wl(spare.working_lines());
  Rng rng(2024);
  Engine engine(device, attack, wl, spare, rng);
  return engine.run().normalized;
}

}  // namespace

int main() {
  Rng rng(7);
  EnduranceModelParams params;
  params.endurance_at_mean = 20000;  // scaled for a fast run
  const EnduranceModel model(params);
  auto map = std::make_shared<EnduranceMap>(
      EnduranceMap::from_model(DeviceGeometry::scaled(2048, 128), model, rng));

  RampAttack ramp;
  MirrorSparing mirror(map);
  const double mirror_lifetime = run(ramp, mirror, map);

  MaxWeParams mw;  // paper defaults: 10% spares, 90% SWRs
  auto maxwe = make_maxwe(map, mw);
  ramp.reset();
  const double maxwe_lifetime = run(ramp, *maxwe, map);

  std::printf("custom RampAttack vs two spare schemes (same ~6%% spare "
              "budget-ish, no wear leveling):\n");
  std::printf("  MirrorSparing (naive, endurance-blind): %5.2f%% of ideal\n",
              100 * mirror_lifetime);
  std::printf("  Max-WE (weak-priority + weak-strong):   %5.2f%% of ideal\n",
              100 * maxwe_lifetime);
  std::printf("\nSee attack/attack.h and spare/spare_scheme.h — a custom "
              "policy is one class each.\n");
  return 0;
}
