// Quickstart: the paper's headline experiment in ~40 lines.
//
// Builds the evaluation configuration (1 GB PCM bank, 2048 regions,
// Zhang&Li endurance variation), launches the Uniform Address Attack
// against an unprotected device and against Max-WE, and prints the
// normalized lifetimes plus the mapping-table overhead — the numbers
// behind the paper's abstract (4.1% -> 9.5x improvement, 0.016% mapping
// overhead).
//
// Run: build/examples/quickstart [--seed N]

#include <cstdio>
#include <iostream>

#include "core/overhead.h"
#include "sim/experiment.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace nvmsec;

  CliParser cli("Max-WE quickstart: UAA vs. an unprotected and a protected "
                "1 GB NVM bank");
  cli.add_flag("seed", "RNG seed for the endurance map draw", "42");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  ExperimentConfig config;  // defaults: paper 1 GB geometry, UAA, event mode
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  config.spare_scheme = "none";
  const LifetimeResult unprotected = run_experiment(config);

  config.spare_scheme = "maxwe";  // 10% spares, 90% of them SWRs (paper §5.2)
  const LifetimeResult protected_run = run_experiment(config);

  const auto overhead = mapping_overhead(MappingOverheadInputs::from_geometry(
      config.geometry, config.spare_fraction, config.swr_fraction));

  std::printf("Uniform Address Attack on a 1 GB NVM bank (2048 regions)\n");
  std::printf("  unprotected : %6.2f%% of ideal lifetime\n",
              100.0 * unprotected.normalized);
  std::printf("  Max-WE      : %6.2f%% of ideal lifetime  (%.1fx better)\n",
              100.0 * protected_run.normalized,
              protected_run.normalized / unprotected.normalized);
  std::printf("  mapping overhead: %.3f MB (vs %.3f MB line-level, %.1f%%)\n",
              overhead.maxwe_total_mb(), overhead.traditional_mb(),
              100.0 * overhead.ratio);
  return 0;
}
