// Compare how the bundled attacks fare against each wear-leveler / spare
// combination on a scaled device — a small matrix version of the paper's
// §3.3 discussion ("The Vulnerability of Prior Wear-out Delay Techniques").
//
// Run: build/examples/attack_comparison [--lines N] [--regions R] [--seed S]

#include <iostream>

#include "sim/experiment.h"
#include "util/cli.h"
#include "util/table.h"
#include "wearlevel/wear_leveler.h"

int main(int argc, char** argv) {
  using namespace nvmsec;

  CliParser cli("Attack vs defense lifetime matrix (normalized lifetime %)");
  cli.add_flag("lines", "device size in lines", "2048");
  cli.add_flag("regions", "region count", "128");
  cli.add_flag("endurance", "mean line endurance (scaled)", "20000");
  cli.add_flag("seed", "RNG seed", "1");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  const auto lines = static_cast<std::uint64_t>(cli.get_int("lines"));
  const auto regions = static_cast<std::uint64_t>(cli.get_int("regions"));
  const double endurance = cli.get_double("endurance");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  for (const std::string spare : {"none", "maxwe"}) {
    Table table({"wear leveler", "zipf (benign)", "hotspot", "bpa", "uaa"});
    table.set_title("spare scheme: " + spare +
                    "  (lifetime as % of ideal; UAA is the strongest attack)");
    table.set_precision(2);
    for (const std::string wl :
         {"none", "startgap", "tlsr", "pcms", "bwl", "wawl", "twl"}) {
      std::vector<Cell> row;
      row.emplace_back(wl);
      for (const std::string attack : {"zipf", "hotspot", "bpa", "uaa"}) {
        ExperimentConfig c = scaled_stochastic_config(lines, regions,
                                                      endurance);
        c.attack = attack;
        c.wear_leveler = wl;
        c.spare_scheme = spare;
        c.seed = seed;
        const double pct = 100.0 * run_experiment(c).normalized;
        row.emplace_back(pct);
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  std::cout << "reading guide: wear levelers rescue the hotspot column but "
               "cannot rescue the uaa column (§3.3.1) — only spare-line "
               "replacement (Max-WE) moves that one.\n";
  return 0;
}
