#!/usr/bin/env bash
# Adaptive-defense scenario matrix: {static benign-tuned, static
# attack-tuned, adaptive} x {zipf, uaa, bpa, uaa-onset, bursty}.
#
# Two checks are GATING:
#   * on the UAA-onset scenario the adaptive config must recover at least
#     GAP_RECOVERY_MIN of the lifetime gap between the two static tunings
#     (i.e. land well above the worse static choice — no static cadence is
#     safe against a stream that changes character mid-run);
#   * on pure-zipf benign traffic the adaptive config must stay within
#     BENIGN_REGRESSION_MAX of the static benign tuning (the detector must
#     not false-alarm its lifetime away).
# The rest of the matrix is recorded in BENCH_adaptive.json for trend
# tracking but is informational.
#
# Usage: scripts/bench_adaptive.sh [build-dir] [output-json] [seeds]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_adaptive.json}"
SEEDS="${3:-5}"

TOOL="$BUILD_DIR/tools/maxwe_sim"
if [[ ! -x "$TOOL" ]]; then
  echo "build first: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR" >&2
  exit 1
fi

GAP_RECOVERY_MIN="0.20"
BENIGN_REGRESSION_MAX="0.05"

# Scaled stochastic device. The benign cadence (psi 32) is what zipf
# traffic wants; the attack cadence (psi 256 = 32 * 2^3) is where the
# adaptive controller tops out under a sweep alarm (factor 2, 3 steps).
BASE=(--mode stochastic --lines 2048 --regions 128 --endurance-mean 2000
      --spare maxwe --wl startgap --seeds "$SEEDS")
PSI_BENIGN=32
PSI_ATTACK=256
DETECT=(--detect --detect-window 8192 --adaptive
        --adaptive-factor 2.0 --adaptive-max-steps 3)

ONSET=100000
BURSTY="zipf:100k,uaa:50k"

# run <psi> <extra args...> -> mean normalized lifetime (percent).
run() {
  local psi="$1"
  shift
  "$TOOL" "${BASE[@]}" --swap-interval "$psi" "$@" |
    awk -F'[:%]' '/normalized lifetime/ { gsub(/ /, "", $2); print $2 }'
}

declare -A LIFE
for scenario in zipf uaa bpa onset bursty; do
  case "$scenario" in
    zipf)   args=(--attack zipf) ;;
    uaa)    args=(--attack uaa) ;;
    bpa)    args=(--attack bpa) ;;
    onset)  args=(--attack-onset "$ONSET") ;;
    bursty) args=(--attack-phases "$BURSTY") ;;
  esac
  LIFE[$scenario,static_benign]="$(run "$PSI_BENIGN" "${args[@]}")"
  LIFE[$scenario,static_attack]="$(run "$PSI_ATTACK" "${args[@]}")"
  LIFE[$scenario,adaptive]="$(run "$PSI_BENIGN" "${args[@]}" "${DETECT[@]}")"
  printf '== %-7s static(psi=%s) %s%%  static(psi=%s) %s%%  adaptive %s%%\n' \
    "$scenario" "$PSI_BENIGN" "${LIFE[$scenario,static_benign]}" \
    "$PSI_ATTACK" "${LIFE[$scenario,static_attack]}" \
    "${LIFE[$scenario,adaptive]}"
done

# GATE 1: fraction of the |static_benign - static_attack| gap the adaptive
# run recovers above the worse static tuning, on the UAA-onset scenario.
GAP_RECOVERED="$(awk -v b="${LIFE[onset,static_benign]}" \
                     -v a="${LIFE[onset,static_attack]}" \
                     -v ad="${LIFE[onset,adaptive]}" 'BEGIN {
  lo = (b < a) ? b : a; hi = (b > a) ? b : a
  printf "%.4f", (hi > lo) ? (ad - lo) / (hi - lo) : 1
}')"
GAP_OK="$(awk -v r="$GAP_RECOVERED" -v min="$GAP_RECOVERY_MIN" \
  'BEGIN { print (r >= min) ? "true" : "false" }')"

# GATE 2: benign regression of the adaptive config on pure zipf.
BENIGN_REGRESSION="$(awk -v s="${LIFE[zipf,static_benign]}" \
                         -v ad="${LIFE[zipf,adaptive]}" \
  'BEGIN { printf "%.4f", (s > 0) ? (s - ad) / s : 0 }')"
BENIGN_OK="$(awk -v r="$BENIGN_REGRESSION" -v max="$BENIGN_REGRESSION_MAX" \
  'BEGIN { print (r <= max) ? "true" : "false" }')"

echo "== onset gap recovery: $GAP_RECOVERED (gate >= $GAP_RECOVERY_MIN: $GAP_OK)"
echo "== benign zipf regression: $BENIGN_REGRESSION (gate <= $BENIGN_REGRESSION_MAX: $BENIGN_OK)"

scenario_json() {
  printf '    "%s": {"static_benign": %s, "static_attack": %s, "adaptive": %s}' \
    "$1" "${LIFE[$1,static_benign]}" "${LIFE[$1,static_attack]}" \
    "${LIFE[$1,adaptive]}"
}

cat > "$OUT_JSON" <<EOF
{
  "benchmark": "adaptive_defense_matrix",
  "config": "stochastic 2048x128 maxwe startgap, psi ${PSI_BENIGN}/${PSI_ATTACK}, window 8192",
  "seeds": $SEEDS,
  "onset_writes": $ONSET,
  "bursty_schedule": "$BURSTY",
  "normalized_lifetime_pct": {
$(scenario_json zipf),
$(scenario_json uaa),
$(scenario_json bpa),
$(scenario_json onset),
$(scenario_json bursty)
  },
  "onset_gap_recovered": $GAP_RECOVERED,
  "onset_gap_recovery_min": $GAP_RECOVERY_MIN,
  "onset_gap_ok": $GAP_OK,
  "benign_regression": $BENIGN_REGRESSION,
  "benign_regression_max": $BENIGN_REGRESSION_MAX,
  "benign_ok": $BENIGN_OK
}
EOF
echo "== wrote $OUT_JSON"

if [[ "$GAP_OK" != "true" || "$BENIGN_OK" != "true" ]]; then
  echo "FAIL: adaptive-defense gate violated (see $OUT_JSON)" >&2
  exit 1
fi
