#!/usr/bin/env bash
# Reproducible perf baseline for the parallel experiment runner.
#
# Runs the Fig. 6 spare-fraction sweep serially (--jobs 1) and with all
# cores (--jobs N), checks the two tables are byte-identical (the runner's
# determinism guarantee — this check is GATING), and records wall-clock
# times + speedup in BENCH_parallel_sweep.json (speedup is informational,
# NOT gating: it depends on the machine's core count).
#
# Also measures the decision event log's overhead: the same run with and
# without --events-out, recorded in BENCH_obs_overhead.json (informational;
# the GATING part is that two recorded runs write byte-identical logs).
#
# Usage: scripts/bench_sweep_timing.sh [build-dir] [output-json] [seeds]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_parallel_sweep.json}"
SEEDS="${3:-3}"
OBS_OUT_JSON="${OBS_OUT_JSON:-BENCH_obs_overhead.json}"

BENCH="$BUILD_DIR/bench/bench_fig6_spare_sweep"
if [[ ! -x "$BENCH" ]]; then
  echo "build first: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR" >&2
  exit 1
fi

CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
# Even on a single-core machine, drive the pool with 2 workers so the
# parallel code path (not the jobs=1 serial short-circuit) is what gets
# compared against the reference.
PARALLEL_JOBS="$CORES"
if [[ "$PARALLEL_JOBS" -lt 2 ]]; then PARALLEL_JOBS=2; fi

now_ns() { date +%s%N; }

run_timed() {  # run_timed <jobs> <output-file>; echoes elapsed seconds
  local jobs="$1" out="$2" t0 t1
  t0="$(now_ns)"
  "$BENCH" --seeds "$SEEDS" --jobs "$jobs" --csv > "$out"
  t1="$(now_ns)"
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== Fig. 6 sweep, --seeds $SEEDS, --jobs 1 (serial reference)"
T_SERIAL="$(run_timed 1 "$workdir/serial.csv")"
echo "   ${T_SERIAL}s"

echo "== Fig. 6 sweep, --seeds $SEEDS, --jobs $PARALLEL_JOBS"
T_PARALLEL="$(run_timed "$PARALLEL_JOBS" "$workdir/parallel.csv")"
echo "   ${T_PARALLEL}s"

# GATING: parallel output must be byte-identical to serial output.
if ! cmp -s "$workdir/serial.csv" "$workdir/parallel.csv"; then
  echo "FAIL: --jobs $PARALLEL_JOBS output differs from --jobs 1" >&2
  diff "$workdir/serial.csv" "$workdir/parallel.csv" >&2 || true
  exit 1
fi
echo "== outputs byte-identical at jobs=1 and jobs=$PARALLEL_JOBS"

SPEEDUP="$(awk -v s="$T_SERIAL" -v p="$T_PARALLEL" \
  'BEGIN { printf "%.2f", (p > 0) ? s / p : 0 }')"

cat > "$OUT_JSON" <<EOF
{
  "benchmark": "bench_fig6_spare_sweep",
  "seeds": $SEEDS,
  "cores": $CORES,
  "serial_jobs": 1,
  "parallel_jobs": $PARALLEL_JOBS,
  "serial_seconds": $T_SERIAL,
  "parallel_seconds": $T_PARALLEL,
  "speedup": $SPEEDUP,
  "outputs_identical": true
}
EOF

echo "== wrote $OUT_JSON (speedup ${SPEEDUP}x with $PARALLEL_JOBS jobs on $CORES cores)"

# ---- decision event log overhead ------------------------------------------
# The same stochastic run three ways: plain (no sinks), and twice with
# --events-out. The no-op path must stay effectively free (informational on
# a shared box), and the two recorded logs must be byte-identical (GATING).
SIM="$BUILD_DIR/tools/maxwe_sim"
if [[ ! -x "$SIM" ]]; then
  echo "skipping obs-overhead bench: $SIM not built" >&2
  exit 0
fi

SIM_ARGS=(--mode stochastic --lines 2048 --regions 128 --endurance-mean 2000
          --spare maxwe --seed 11)

run_sim_timed() {  # run_sim_timed [extra args...]; echoes elapsed seconds
  local t0 t1
  t0="$(now_ns)"
  "$SIM" "${SIM_ARGS[@]}" "$@" > /dev/null
  t1="$(now_ns)"
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}

echo "== obs overhead: plain run (no sinks)"
T_PLAIN="$(run_sim_timed)"
echo "   ${T_PLAIN}s"

echo "== obs overhead: run with --events-out (twice, for the identity gate)"
T_EVENTS="$(run_sim_timed --events-out "$workdir/obs_a.events.jsonl")"
echo "   ${T_EVENTS}s"
run_sim_timed --events-out "$workdir/obs_b.events.jsonl" > /dev/null

# GATING: recording the same run twice must write byte-identical logs.
if ! cmp -s "$workdir/obs_a.events.jsonl" "$workdir/obs_b.events.jsonl"; then
  echo "FAIL: two identical runs wrote different event logs" >&2
  exit 1
fi
echo "== event logs byte-identical across repeated runs"

EVENTS_LINES="$(wc -l < "$workdir/obs_a.events.jsonl" | tr -d ' ')"
OVERHEAD="$(awk -v p="$T_PLAIN" -v e="$T_EVENTS" \
  'BEGIN { printf "%.2f", (p > 0) ? 100 * (e - p) / p : 0 }')"

cat > "$OBS_OUT_JSON" <<EOF
{
  "benchmark": "maxwe_sim_events_overhead",
  "config": "stochastic 2048x128 maxwe seed 11",
  "plain_seconds": $T_PLAIN,
  "events_seconds": $T_EVENTS,
  "overhead_percent": $OVERHEAD,
  "event_lines": $EVENTS_LINES,
  "logs_identical": true
}
EOF

echo "== wrote $OBS_OUT_JSON (event-log overhead ${OVERHEAD}% over ${T_PLAIN}s baseline)"
