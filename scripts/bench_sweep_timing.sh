#!/usr/bin/env bash
# Reproducible perf baseline for the parallel experiment runner.
#
# Runs the Fig. 6 spare-fraction sweep serially (--jobs 1) and with all
# cores (--jobs N), checks the two tables are byte-identical (the runner's
# determinism guarantee — this check is GATING), and records wall-clock
# times + speedup in BENCH_parallel_sweep.json (speedup is informational,
# NOT gating: it depends on the machine's core count).
#
# Also measures the decision event log's overhead: the same run with and
# without --events-out, recorded in BENCH_obs_overhead.json (informational;
# the GATING part is that two recorded runs write byte-identical logs).
#
# Finally, measures the run-length batched fast path: a fig6-style UAA
# spare-fraction sweep with and without --no-fastpath, recorded in
# BENCH_fastpath.json. The speedup is informational but expected to be
# large (>= 3x on typical boxes); the GATING part is that both modes print
# byte-identical results.
#
# Usage: scripts/bench_sweep_timing.sh [build-dir] [output-json] [seeds]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_parallel_sweep.json}"
SEEDS="${3:-3}"
OBS_OUT_JSON="${OBS_OUT_JSON:-BENCH_obs_overhead.json}"
FASTPATH_OUT_JSON="${FASTPATH_OUT_JSON:-BENCH_fastpath.json}"

BENCH="$BUILD_DIR/bench/bench_fig6_spare_sweep"
if [[ ! -x "$BENCH" ]]; then
  echo "build first: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR" >&2
  exit 1
fi

CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
# Even on a single-core machine, drive the pool with 2 workers so the
# parallel code path (not the jobs=1 serial short-circuit) is what gets
# compared against the reference.
PARALLEL_JOBS="$CORES"
if [[ "$PARALLEL_JOBS" -lt 2 ]]; then PARALLEL_JOBS=2; fi

now_ns() { date +%s%N; }

run_timed() {  # run_timed <jobs> <output-file>; echoes elapsed seconds
  local jobs="$1" out="$2" t0 t1
  t0="$(now_ns)"
  "$BENCH" --seeds "$SEEDS" --jobs "$jobs" --csv > "$out"
  t1="$(now_ns)"
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== Fig. 6 sweep, --seeds $SEEDS, --jobs 1 (serial reference)"
T_SERIAL="$(run_timed 1 "$workdir/serial.csv")"
echo "   ${T_SERIAL}s"

echo "== Fig. 6 sweep, --seeds $SEEDS, --jobs $PARALLEL_JOBS"
T_PARALLEL="$(run_timed "$PARALLEL_JOBS" "$workdir/parallel.csv")"
echo "   ${T_PARALLEL}s"

# GATING: parallel output must be byte-identical to serial output.
if ! cmp -s "$workdir/serial.csv" "$workdir/parallel.csv"; then
  echo "FAIL: --jobs $PARALLEL_JOBS output differs from --jobs 1" >&2
  diff "$workdir/serial.csv" "$workdir/parallel.csv" >&2 || true
  exit 1
fi
echo "== outputs byte-identical at jobs=1 and jobs=$PARALLEL_JOBS"

SPEEDUP="$(awk -v s="$T_SERIAL" -v p="$T_PARALLEL" \
  'BEGIN { printf "%.2f", (p > 0) ? s / p : 0 }')"

cat > "$OUT_JSON" <<EOF
{
  "benchmark": "bench_fig6_spare_sweep",
  "seeds": $SEEDS,
  "cores": $CORES,
  "serial_jobs": 1,
  "parallel_jobs": $PARALLEL_JOBS,
  "serial_seconds": $T_SERIAL,
  "parallel_seconds": $T_PARALLEL,
  "speedup": $SPEEDUP,
  "outputs_identical": true
}
EOF

echo "== wrote $OUT_JSON (speedup ${SPEEDUP}x with $PARALLEL_JOBS jobs on $CORES cores)"

# ---- decision event log overhead ------------------------------------------
# The same stochastic run three ways: plain (no sinks), and twice with
# --events-out. The no-op path must stay effectively free (informational on
# a shared box), and the two recorded logs must be byte-identical (GATING).
SIM="$BUILD_DIR/tools/maxwe_sim"
if [[ ! -x "$SIM" ]]; then
  echo "skipping obs-overhead bench: $SIM not built" >&2
  exit 0
fi

SIM_ARGS=(--mode stochastic --lines 2048 --regions 128 --endurance-mean 2000
          --spare maxwe --seed 11)

run_sim_timed() {  # run_sim_timed [extra args...]; echoes elapsed seconds
  local t0 t1
  t0="$(now_ns)"
  "$SIM" "${SIM_ARGS[@]}" "$@" > /dev/null
  t1="$(now_ns)"
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}

echo "== obs overhead: plain run (no sinks)"
T_PLAIN="$(run_sim_timed)"
echo "   ${T_PLAIN}s"

echo "== obs overhead: run with --events-out (twice, for the identity gate)"
T_EVENTS="$(run_sim_timed --events-out "$workdir/obs_a.events.jsonl")"
echo "   ${T_EVENTS}s"
run_sim_timed --events-out "$workdir/obs_b.events.jsonl" > /dev/null

# GATING: recording the same run twice must write byte-identical logs.
if ! cmp -s "$workdir/obs_a.events.jsonl" "$workdir/obs_b.events.jsonl"; then
  echo "FAIL: two identical runs wrote different event logs" >&2
  exit 1
fi
echo "== event logs byte-identical across repeated runs"

EVENTS_LINES="$(wc -l < "$workdir/obs_a.events.jsonl" | tr -d ' ')"
OVERHEAD="$(awk -v p="$T_PLAIN" -v e="$T_EVENTS" \
  'BEGIN { printf "%.2f", (p > 0) ? 100 * (e - p) / p : 0 }')"

cat > "$OBS_OUT_JSON" <<EOF
{
  "benchmark": "maxwe_sim_events_overhead",
  "config": "stochastic 2048x128 maxwe seed 11",
  "plain_seconds": $T_PLAIN,
  "events_seconds": $T_EVENTS,
  "overhead_percent": $OVERHEAD,
  "event_lines": $EVENTS_LINES,
  "logs_identical": true
}
EOF

echo "== wrote $OBS_OUT_JSON (event-log overhead ${OVERHEAD}% over ${T_PLAIN}s baseline)"

# ---- batched fast path speedup --------------------------------------------
# A fig6-style UAA spare-fraction sweep, once through the run-length batched
# fast path (the default) and once with --no-fastpath. Both modes must print
# byte-identical results (GATING — the fast path is an optimization, never a
# model change); the speedup is recorded for the record.
FP_FRACTIONS=(0.10 0.20 0.30)
FP_ATTACKS=(uaa bpa)
FP_ARGS=(--mode stochastic --lines 4096 --regions 256
         --endurance-mean 30000 --spare maxwe --seed 11)

run_fp_sweep() {  # run_fp_sweep <output-file> [extra args...]; echoes seconds
  local out="$1" t0 t1 frac atk
  shift
  t0="$(now_ns)"
  : > "$out"
  for atk in "${FP_ATTACKS[@]}"; do
    for frac in "${FP_FRACTIONS[@]}"; do
      "$SIM" "${FP_ARGS[@]}" --attack "$atk" --spare-fraction "$frac" \
        "$@" >> "$out"
    done
  done
  t1="$(now_ns)"
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}

echo "== fastpath sweep: batched (default)"
T_FAST="$(run_fp_sweep "$workdir/fp_fast.txt")"
echo "   ${T_FAST}s"

echo "== fastpath sweep: --no-fastpath (per-write reference)"
T_PERWRITE="$(run_fp_sweep "$workdir/fp_slow.txt" --no-fastpath)"
echo "   ${T_PERWRITE}s"

# GATING: the fast path must not change a single output byte.
if ! cmp -s "$workdir/fp_fast.txt" "$workdir/fp_slow.txt"; then
  echo "FAIL: fast-path output differs from --no-fastpath" >&2
  diff "$workdir/fp_fast.txt" "$workdir/fp_slow.txt" >&2 || true
  exit 1
fi
echo "== fastpath and per-write outputs byte-identical"

FP_SPEEDUP="$(awk -v f="$T_FAST" -v p="$T_PERWRITE" \
  'BEGIN { printf "%.2f", (f > 0) ? p / f : 0 }')"

# ---- stochastic (count-vector) fast path ----------------------------------
# The multinomial counts path covers the stochastic attacks, where the
# batched run is distribution-equivalent rather than bit-identical. The GATE
# is therefore a lifetime band per attack: hotspot's write multiset is exact
# (15% band covers terminal-chunk attribution), random/zipf draw from a
# dedicated RNG substream (20% band covers sampling noise). Timings and the
# per-attack speedups land in a "stochastic" section of the same JSON.
ST_ARGS=(--mode stochastic --lines 4096 --regions 256
         --endurance-mean 300000 --wl none --spare maxwe --seed 11
         --hotspot-set 64)
ST_ATTACKS=(zipf hotspot random)
declare -A ST_BAND=([hotspot]=0.15 [zipf]=0.20 [random]=0.20)

user_writes_of() {  # user_writes_of <output-file>
  awk '/user writes:/ { print $3; exit }' "$1"
}

run_st_timed() {  # run_st_timed <attack> <output-file> [extra]; echoes seconds
  local atk="$1" out="$2" t0 t1
  shift 2
  t0="$(now_ns)"
  "$SIM" "${ST_ARGS[@]}" --attack "$atk" "$@" > "$out"
  t1="$(now_ns)"
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}

ST_JSON_ROWS=""
ST_T_FAST_TOTAL=0
ST_T_SLOW_TOTAL=0
for atk in "${ST_ATTACKS[@]}"; do
  echo "== stochastic fastpath: $atk (counts path)"
  T_SF="$(run_st_timed "$atk" "$workdir/st_${atk}_fast.txt")"
  echo "   ${T_SF}s"
  echo "== stochastic fastpath: $atk --no-fastpath (per-write reference)"
  T_SS="$(run_st_timed "$atk" "$workdir/st_${atk}_slow.txt" --no-fastpath)"
  echo "   ${T_SS}s"

  UW_FAST="$(user_writes_of "$workdir/st_${atk}_fast.txt")"
  UW_SLOW="$(user_writes_of "$workdir/st_${atk}_slow.txt")"
  BAND="${ST_BAND[$atk]}"
  # GATING: the batched lifetime must sit within the attack's band of the
  # per-write lifetime — the distribution-equivalence contract in numbers.
  if ! awk -v f="$UW_FAST" -v s="$UW_SLOW" -v tol="$BAND" \
      'BEGIN { r = f / s; exit !(r >= 1 - tol && r <= 1 + tol) }'; then
    echo "FAIL: $atk batched lifetime $UW_FAST vs per-write $UW_SLOW" \
         "outside ${BAND} band" >&2
    exit 1
  fi
  ST_SPEEDUP="$(awk -v f="$T_SF" -v p="$T_SS" \
    'BEGIN { printf "%.2f", (f > 0) ? p / f : 0 }')"
  echo "== $atk: lifetimes $UW_FAST vs $UW_SLOW (in band), ${ST_SPEEDUP}x"
  ST_T_FAST_TOTAL="$(awk -v a="$ST_T_FAST_TOTAL" -v b="$T_SF" \
    'BEGIN { printf "%.3f", a + b }')"
  ST_T_SLOW_TOTAL="$(awk -v a="$ST_T_SLOW_TOTAL" -v b="$T_SS" \
    'BEGIN { printf "%.3f", a + b }')"
  ST_JSON_ROWS="$ST_JSON_ROWS
    {\"attack\": \"$atk\", \"fastpath_seconds\": $T_SF, \"perwrite_seconds\": $T_SS, \"speedup\": $ST_SPEEDUP, \"user_writes_fast\": $UW_FAST, \"user_writes_perwrite\": $UW_SLOW, \"band\": $BAND},"
done
ST_JSON_ROWS="${ST_JSON_ROWS%,}"

ST_SPEEDUP_TOTAL="$(awk -v f="$ST_T_FAST_TOTAL" -v p="$ST_T_SLOW_TOTAL" \
  'BEGIN { printf "%.2f", (f > 0) ? p / f : 0 }')"

cat > "$FASTPATH_OUT_JSON" <<EOF
{
  "benchmark": "maxwe_sim_fastpath_sweep",
  "config": "stochastic 4096x256 maxwe seed 11, attacks [${FP_ATTACKS[*]}], spare fractions [${FP_FRACTIONS[*]}]",
  "fastpath_seconds": $T_FAST,
  "perwrite_seconds": $T_PERWRITE,
  "speedup": $FP_SPEEDUP,
  "outputs_identical": true,
  "stochastic": {
    "config": "stochastic 4096x256 endurance 3e5 wl=none maxwe seed 11 hotspot-set 64",
    "contract": "hotspot multiset-exact (band 0.15), zipf/random distribution-equivalent (band 0.20)",
    "attacks": [$ST_JSON_ROWS
    ],
    "fastpath_seconds": $ST_T_FAST_TOTAL,
    "perwrite_seconds": $ST_T_SLOW_TOTAL,
    "speedup": $ST_SPEEDUP_TOTAL,
    "lifetimes_in_band": true
  }
}
EOF

echo "== wrote $FASTPATH_OUT_JSON (fast path ${FP_SPEEDUP}x bit-identical," \
     "${ST_SPEEDUP_TOTAL}x stochastic)"
