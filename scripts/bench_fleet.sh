#!/usr/bin/env bash
# Reproducible perf baseline for the sharded fleet runner.
#
# Runs the same >= 10k-device campaign at --jobs 1, 2 and 4, checks that all
# three fleet-result JSONs are byte-identical (the fleet determinism
# contract — this check is GATING), and records devices/sec at each job
# count in BENCH_fleet.json (throughput and scaling are informational, NOT
# gating: they depend on the machine's core count).
#
# Usage: scripts/bench_fleet.sh [build-dir] [output-json] [devices]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_fleet.json}"
DEVICES="${3:-10000}"

TOOL="$BUILD_DIR/tools/fleet_sim"
if [[ ! -x "$TOOL" ]]; then
  echo "build first: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR" >&2
  exit 1
fi

CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

# Small per-device geometry so a 10k-device population finishes in minutes;
# the fleet layer's cost model (shard fan-out, sketch folds, checkpointing)
# is what is being measured, not a single device's write loop.
FLEET_ARGS=(--devices "$DEVICES" --lines 256 --regions 16
            --endurance-mean 200 --spare maxwe --shard-size 256)

now_ns() { date +%s%N; }

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

declare -A SECONDS_AT RATE_AT
for jobs in 1 2 4; do
  echo "== fleet: $DEVICES devices, --jobs $jobs"
  t0="$(now_ns)"
  "$TOOL" "${FLEET_ARGS[@]}" --jobs "$jobs" --out "$workdir/fleet_$jobs.json"
  t1="$(now_ns)"
  SECONDS_AT[$jobs]="$(awk -v a="$t0" -v b="$t1" \
    'BEGIN { printf "%.3f", (b - a) / 1e9 }')"
  RATE_AT[$jobs]="$(awk -v d="$DEVICES" -v s="${SECONDS_AT[$jobs]}" \
    'BEGIN { printf "%.1f", (s > 0) ? d / s : 0 }')"
  echo "   ${SECONDS_AT[$jobs]}s (${RATE_AT[$jobs]} devices/sec)"
done

# GATING: the fleet result must be byte-identical at every job count.
for jobs in 2 4; do
  if ! cmp -s "$workdir/fleet_1.json" "$workdir/fleet_$jobs.json"; then
    echo "FAIL: --jobs $jobs fleet result differs from --jobs 1" >&2
    exit 1
  fi
done
echo "== fleet results byte-identical at jobs 1/2/4"

cat > "$OUT_JSON" <<EOF
{
  "benchmark": "fleet_sim_population",
  "config": "event 256x16 maxwe uaa, shard 256",
  "devices": $DEVICES,
  "cores": $CORES,
  "jobs1_seconds": ${SECONDS_AT[1]},
  "jobs1_devices_per_sec": ${RATE_AT[1]},
  "jobs2_seconds": ${SECONDS_AT[2]},
  "jobs2_devices_per_sec": ${RATE_AT[2]},
  "jobs4_seconds": ${SECONDS_AT[4]},
  "jobs4_devices_per_sec": ${RATE_AT[4]},
  "outputs_identical": true
}
EOF

echo "== wrote $OUT_JSON (${RATE_AT[1]} devices/sec serial on $CORES cores)"
