#!/usr/bin/env bash
# Reproducible perf baseline for the sharded fleet runner.
#
# Runs the same >= 10k-device campaign at --jobs 1, 2 and 4, checks that all
# three fleet-result JSONs are byte-identical (the fleet determinism
# contract — this check is GATING), records devices/sec at each job count
# plus the --jobs 0 (auto) utilization witness in BENCH_fleet.json, and
# measures the append-only checkpoint journal's write cost over the
# campaign's shards.
#
# Two more GATING checks:
#   * jobs=1 throughput must be >= MIN_SPEEDUP (default 3.0) times the
#     committed pre-overhaul baseline (BASELINE_DEVICES_PER_SEC) — the
#     device-setup-amortization floor.
#   * journal bytes written over the campaign must stay <= 2x the final
#     journal size (append-only O(campaign), never the rewrite scheme's
#     O(shards^2) total).
#
# Usage: scripts/bench_fleet.sh [build-dir] [output-json] [devices]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_fleet.json}"
DEVICES="${3:-10000}"
# Committed jobs=1 rate before the fleet hot-path overhaul (per-device
# map/spare/device reconstruction, full-rewrite MXWECKPT checkpoints).
BASELINE_DEVICES_PER_SEC="${BASELINE_DEVICES_PER_SEC:-9157.5}"
MIN_SPEEDUP="${MIN_SPEEDUP:-3.0}"

TOOL="$BUILD_DIR/tools/fleet_sim"
if [[ ! -x "$TOOL" ]]; then
  echo "build first: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR" >&2
  exit 1
fi

CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

# Small per-device geometry so a 10k-device population finishes in minutes;
# the fleet layer's cost model (shard fan-out, sketch folds, checkpointing)
# is what is being measured, not a single device's write loop.
SHARD_SIZE=256
FLEET_ARGS=(--devices "$DEVICES" --lines 256 --regions 16
            --endurance-mean 200 --spare maxwe --shard-size "$SHARD_SIZE")

now_ns() { date +%s%N; }

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

declare -A SECONDS_AT RATE_AT
for jobs in 1 2 4; do
  echo "== fleet: $DEVICES devices, --jobs $jobs"
  t0="$(now_ns)"
  "$TOOL" "${FLEET_ARGS[@]}" --jobs "$jobs" --out "$workdir/fleet_$jobs.json"
  t1="$(now_ns)"
  SECONDS_AT[$jobs]="$(awk -v a="$t0" -v b="$t1" \
    'BEGIN { printf "%.3f", (b - a) / 1e9 }')"
  RATE_AT[$jobs]="$(awk -v d="$DEVICES" -v s="${SECONDS_AT[$jobs]}" \
    'BEGIN { printf "%.1f", (s > 0) ? d / s : 0 }')"
  echo "   ${SECONDS_AT[$jobs]}s (${RATE_AT[$jobs]} devices/sec)"
done

# GATING: the fleet result must be byte-identical at every job count.
for jobs in 2 4; do
  if ! cmp -s "$workdir/fleet_1.json" "$workdir/fleet_$jobs.json"; then
    echo "FAIL: --jobs $jobs fleet result differs from --jobs 1" >&2
    exit 1
  fi
done
echo "== fleet results byte-identical at jobs 1/2/4"

# GATING: setup-amortization floor vs the committed pre-overhaul baseline.
SPEEDUP="$(awk -v r="${RATE_AT[1]}" -v b="$BASELINE_DEVICES_PER_SEC" \
  'BEGIN { printf "%.2f", (b > 0) ? r / b : 0 }')"
if ! awk -v s="$SPEEDUP" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(s >= m) }'; then
  echo "FAIL: jobs=1 speedup ${SPEEDUP}x vs committed baseline" \
       "(${BASELINE_DEVICES_PER_SEC}/sec) is below ${MIN_SPEEDUP}x" >&2
  exit 1
fi
echo "== jobs=1 speedup vs committed baseline: ${SPEEDUP}x (floor ${MIN_SPEEDUP}x)"

# --jobs 0 (auto-detect) leg with a heartbeat: byte-identity again, plus
# the worker_busy_frac utilization witness from the final heartbeat line.
echo "== fleet: $DEVICES devices, --jobs 0 (auto, $CORES cores)"
"$TOOL" "${FLEET_ARGS[@]}" --jobs 0 --out "$workdir/fleet_auto.json" \
  --heartbeat-out "$workdir/auto.heartbeat.jsonl" --heartbeat-interval 1024
if ! cmp -s "$workdir/fleet_1.json" "$workdir/fleet_auto.json"; then
  echo "FAIL: --jobs 0 fleet result differs from --jobs 1" >&2
  exit 1
fi
WORKER_BUSY_FRAC="$(tail -1 "$workdir/auto.heartbeat.jsonl" \
  | grep -o '"worker_busy_frac":[0-9.eE+-]*' | cut -d: -f2 || true)"
WORKER_BUSY_FRAC="${WORKER_BUSY_FRAC:-null}"
echo "   worker_busy_frac: $WORKER_BUSY_FRAC"

# Checkpoint-journal cost over the campaign's shards: an append-only store
# writes each shard record exactly once, so cumulative bytes written must
# stay within 2x the final journal size (GATING). The old rewrite scheme
# wrote the whole accumulated state after every shard — its total is the
# quadratic sum reported alongside for comparison.
SHARDS=$(( (DEVICES + SHARD_SIZE - 1) / SHARD_SIZE ))
echo "== fleet: journaling campaign ($SHARDS shards, --jobs 1)"
"$TOOL" "${FLEET_ARGS[@]}" --jobs 1 --out "$workdir/fleet_journal.json" \
  --checkpoint-out "$workdir/fleet.jrnl" \
  --heartbeat-out "$workdir/journal.heartbeat.jsonl" --heartbeat-interval 1024
if ! cmp -s "$workdir/fleet_1.json" "$workdir/fleet_journal.json"; then
  echo "FAIL: journaling changed the fleet result" >&2
  exit 1
fi
JOURNAL_FILE_BYTES="$(wc -c < "$workdir/fleet.jrnl" | tr -d ' ')"
JOURNAL_BYTES_WRITTEN="$(tail -1 "$workdir/journal.heartbeat.jsonl" \
  | grep -o '"checkpoint_bytes_written":[0-9]*' | cut -d: -f2)"
if [[ -z "$JOURNAL_BYTES_WRITTEN" ]]; then
  echo "FAIL: final heartbeat carries no checkpoint_bytes_written" >&2
  exit 1
fi
if (( JOURNAL_BYTES_WRITTEN > 2 * JOURNAL_FILE_BYTES )); then
  echo "FAIL: journal wrote ${JOURNAL_BYTES_WRITTEN} bytes for a" \
       "${JOURNAL_FILE_BYTES}-byte final state (append-only bound is 2x)" >&2
  exit 1
fi
# What the rewrite scheme would have cost: after shard k it rewrote k
# records, so the total is the triangular sum of the per-record size.
REWRITE_BYTES_ESTIMATE="$(awk -v f="$JOURNAL_FILE_BYTES" -v s="$SHARDS" \
  'BEGIN { rec = (f - 20) / s; printf "%.0f", s * (s + 1) / 2 * rec + s * 20 }')"
echo "== journal: $JOURNAL_BYTES_WRITTEN bytes written over $SHARDS shards" \
     "(final size $JOURNAL_FILE_BYTES; rewrite scheme would have written" \
     "~$REWRITE_BYTES_ESTIMATE)"

cat > "$OUT_JSON" <<EOF
{
  "benchmark": "fleet_sim_population",
  "config": "event 256x16 maxwe uaa, shard $SHARD_SIZE",
  "devices": $DEVICES,
  "cores": $CORES,
  "jobs1_seconds": ${SECONDS_AT[1]},
  "jobs1_devices_per_sec": ${RATE_AT[1]},
  "jobs2_seconds": ${SECONDS_AT[2]},
  "jobs2_devices_per_sec": ${RATE_AT[2]},
  "jobs4_seconds": ${SECONDS_AT[4]},
  "jobs4_devices_per_sec": ${RATE_AT[4]},
  "baseline_devices_per_sec": $BASELINE_DEVICES_PER_SEC,
  "speedup_vs_baseline": $SPEEDUP,
  "worker_busy_frac": $WORKER_BUSY_FRAC,
  "checkpoint_bytes": {
    "shards": $SHARDS,
    "journal_file_bytes": $JOURNAL_FILE_BYTES,
    "journal_bytes_written": $JOURNAL_BYTES_WRITTEN,
    "rewrite_bytes_estimate": $REWRITE_BYTES_ESTIMATE
  },
  "outputs_identical": true
}
EOF

echo "== wrote $OUT_JSON (${RATE_AT[1]} devices/sec serial on $CORES cores," \
     "${SPEEDUP}x vs baseline)"
