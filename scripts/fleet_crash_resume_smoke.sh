#!/usr/bin/env bash
# Fleet crash/resume smoke test: SIGKILL a checkpointing fleet campaign
# mid-flight, corrupt the journal tail the way a mid-append kill would,
# resume it (at a different --jobs level), and require the resumed
# fleet-result JSON to be byte-identical to an uninterrupted reference
# campaign. Also validates every heartbeat line against the documented
# JSONL schema (v3) and the foreign-population refusal path.
#
# The checkpoint store is an append-only MXWEJRNL journal (one CRC-framed
# record per completed shard), so the kill can land mid-append; replay
# truncates the torn tail and the resumed campaign re-runs only the shards
# whose records never hit the disk intact.
#
# Usage: scripts/fleet_crash_resume_smoke.sh [path/to/fleet_sim] [devices] [jobs]
set -u

TOOL=${1:-build/tools/fleet_sim}
DEVICES=${2:-2000}
JOBS=${3:-2}
if [[ ! -x ${TOOL} ]]; then
  echo "error: ${TOOL} not found or not executable (build first)" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

file_size() {
  wc -c < "$1" | tr -d ' '
}

# Small devices, small shards: the campaign runs long enough for the kill
# to land while shards complete (and journal a record) every few
# milliseconds.
CONFIG=(--devices "${DEVICES}" --shard-size 64 --lines 256 --regions 16
        --endurance-mean 200 --spare maxwe)
CKPT=${WORK}/fleet.ckpt
JOURNAL_HEADER_BYTES=20

echo "[1/4] reference campaign (uninterrupted, --jobs 1, journaling)..."
if ! "${TOOL}" "${CONFIG[@]}" --jobs 1 --checkpoint-out "${WORK}/ref.ckpt" \
     --out "${WORK}/ref.json"; then
  echo "FAIL: reference campaign exited non-zero" >&2
  exit 1
fi

echo "[2/4] journaling campaign, SIGKILL once the first shard record lands..."
"${TOOL}" "${CONFIG[@]}" --jobs "${JOBS}" --checkpoint-out "${CKPT}" \
  --out "${WORK}/killed.json" > "${WORK}/killed.log" 2>&1 &
PID=$!
for _ in $(seq 1 400); do
  if [[ -f ${CKPT} ]] && \
     [[ $(file_size "${CKPT}") -gt ${JOURNAL_HEADER_BYTES} ]]; then
    break
  fi
  kill -0 "${PID}" 2>/dev/null || break
  sleep 0.05
done
if kill -KILL "${PID}" 2>/dev/null; then
  echo "      killed pid ${PID}"
else
  echo "      note: campaign finished before the kill landed (still a valid resume)"
fi
wait "${PID}" 2>/dev/null
if [[ ! -f ${CKPT} ]]; then
  echo "FAIL: no journal was written before the process died" >&2
  exit 1
fi
if ! head -c 8 "${CKPT}" | grep -q "MXWEJRNL"; then
  echo "FAIL: checkpoint file does not carry the MXWEJRNL journal magic" >&2
  exit 1
fi

echo "[3/4] tear the journal tail, then resume (--jobs ${JOBS}, heartbeat attached)..."
# A SIGKILL mid-append leaves half a record; simulate the worst case by
# splicing garbage after the last good record. replay() must truncate it
# and the resume must still reproduce the reference byte-for-byte.
GOOD_BYTES=$(file_size "${CKPT}")
printf '\x40\x00\x00\x00TORN-TAIL-GARBAGE' >> "${CKPT}"
if ! "${TOOL}" "${CONFIG[@]}" --jobs "${JOBS}" --checkpoint-out "${CKPT}" \
     --resume --heartbeat-out "${WORK}/heartbeat.jsonl" \
     --heartbeat-interval 256 --out "${WORK}/resumed.json"; then
  echo "FAIL: resumed campaign exited non-zero" >&2
  exit 1
fi

if ! cmp -s "${WORK}/ref.json" "${WORK}/resumed.json"; then
  echo "FAIL: resumed fleet result differs from the uninterrupted reference" >&2
  diff <(head -c 400 "${WORK}/ref.json") <(head -c 400 "${WORK}/resumed.json") >&2 || true
  exit 1
fi
echo "PASS: resumed fleet result is byte-identical to the uninterrupted run"
if [[ $(file_size "${CKPT}") -lt ${GOOD_BYTES} ]]; then
  echo "FAIL: journal shrank below the pre-corruption size (good records lost)" >&2
  exit 1
fi

# ---- journal growth sanity -------------------------------------------------
# Append-only store: an uninterrupted campaign journals each shard exactly
# once (the reference journal is that floor), and the crash + resume
# re-appends only the shards whose records were lost to the kill — so the
# combined file must stay under 2x the one-record-per-shard size.
JOURNAL_BYTES=$(file_size "${CKPT}")
FULL_ONCE=$(file_size "${WORK}/ref.ckpt")
SHARDS=$(( (DEVICES + 63) / 64 ))
if [[ ${JOURNAL_BYTES} -gt $(( 2 * FULL_ONCE )) ]]; then
  echo "FAIL: crash+resume journal (${JOURNAL_BYTES} bytes) exceeds 2x the uninterrupted journal (${FULL_ONCE} bytes)" >&2
  exit 1
fi
echo "PASS: journal stayed append-only sized (${JOURNAL_BYTES} vs ${FULL_ONCE} bytes uninterrupted, ${SHARDS} shards)"

# ---- heartbeat schema (v3) -------------------------------------------------
if [[ ! -s ${WORK}/heartbeat.jsonl ]]; then
  echo "FAIL: resumed campaign wrote no heartbeat lines" >&2
  exit 1
fi
# devices_per_sec / eta_sec / shard_* / worker_busy_frac are omitted until
# there is data behind them, so only the always-present fields are required
# on every line. checkpoint_bytes_written is always present here because
# the campaign journals.
while IFS= read -r line; do
  for key in '"v":3' '"type":"fleet_heartbeat"' '"devices_done":' \
             '"devices_total":' '"p50":' '"p99":' '"failure_causes":' \
             '"truncated_logs":' '"checkpoint_bytes_written":'; do
    if [[ ${line} != *"${key}"* ]]; then
      echo "FAIL: heartbeat line missing ${key}: ${line}" >&2
      exit 1
    fi
  done
done < "${WORK}/heartbeat.jsonl"
if ! tail -1 "${WORK}/heartbeat.jsonl" \
     | grep -q "\"devices_done\":${DEVICES}"; then
  echo "FAIL: final heartbeat does not cover the whole fleet" >&2
  exit 1
fi
echo "PASS: heartbeat lines conform to the documented v3 schema"

# ---- foreign checkpoint guard ----------------------------------------------
echo "[4/4] foreign-population journal must be refused..."
if "${TOOL}" "${CONFIG[@]}" --seed-start 999 --checkpoint-out "${CKPT}" \
     --resume --out /dev/null 2> "${WORK}/foreign.err"; then
  echo "FAIL: resume accepted a journal from a different population" >&2
  exit 1
fi
echo "PASS: foreign-population journal was refused"
