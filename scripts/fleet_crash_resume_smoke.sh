#!/usr/bin/env bash
# Fleet crash/resume smoke test: SIGKILL a checkpointing fleet campaign
# mid-flight, resume it (at a different --jobs level), and require the
# resumed fleet-result JSON to be byte-identical to an uninterrupted
# reference campaign. Also validates every heartbeat line against the
# documented JSONL schema.
#
# Usage: scripts/fleet_crash_resume_smoke.sh [path/to/fleet_sim] [devices] [jobs]
set -u

TOOL=${1:-build/tools/fleet_sim}
DEVICES=${2:-2000}
JOBS=${3:-2}
if [[ ! -x ${TOOL} ]]; then
  echo "error: ${TOOL} not found or not executable (build first)" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

# Small devices, small shards: the campaign runs long enough for the kill
# to land while shards complete (and checkpoint) every few milliseconds.
CONFIG=(--devices "${DEVICES}" --shard-size 64 --lines 256 --regions 16
        --endurance-mean 200 --spare maxwe)
CKPT=${WORK}/fleet.ckpt

echo "[1/3] reference campaign (uninterrupted, --jobs 1)..."
if ! "${TOOL}" "${CONFIG[@]}" --jobs 1 --out "${WORK}/ref.json"; then
  echo "FAIL: reference campaign exited non-zero" >&2
  exit 1
fi

echo "[2/3] checkpointing campaign, SIGKILL once the first shard lands..."
"${TOOL}" "${CONFIG[@]}" --jobs "${JOBS}" --checkpoint-out "${CKPT}" \
  --out "${WORK}/killed.json" > "${WORK}/killed.log" 2>&1 &
PID=$!
for _ in $(seq 1 400); do
  [[ -f ${CKPT} ]] && break
  kill -0 "${PID}" 2>/dev/null || break
  sleep 0.05
done
if kill -KILL "${PID}" 2>/dev/null; then
  echo "      killed pid ${PID}"
else
  echo "      note: campaign finished before the kill landed (still a valid resume)"
fi
wait "${PID}" 2>/dev/null
if [[ ! -f ${CKPT} ]]; then
  echo "FAIL: no checkpoint was written before the process died" >&2
  exit 1
fi

echo "[3/3] resume the campaign (--jobs ${JOBS}, heartbeat attached)..."
if ! "${TOOL}" "${CONFIG[@]}" --jobs "${JOBS}" --checkpoint-out "${CKPT}" \
     --resume --heartbeat-out "${WORK}/heartbeat.jsonl" \
     --heartbeat-interval 256 --out "${WORK}/resumed.json"; then
  echo "FAIL: resumed campaign exited non-zero" >&2
  exit 1
fi

if ! cmp -s "${WORK}/ref.json" "${WORK}/resumed.json"; then
  echo "FAIL: resumed fleet result differs from the uninterrupted reference" >&2
  diff <(head -c 400 "${WORK}/ref.json") <(head -c 400 "${WORK}/resumed.json") >&2 || true
  exit 1
fi
echo "PASS: resumed fleet result is byte-identical to the uninterrupted run"

# ---- heartbeat schema ------------------------------------------------------
if [[ ! -s ${WORK}/heartbeat.jsonl ]]; then
  echo "FAIL: resumed campaign wrote no heartbeat lines" >&2
  exit 1
fi
while IFS= read -r line; do
  for key in '"v":' '"type":"fleet_heartbeat"' '"devices_done":' \
             '"devices_total":' '"devices_per_sec":' '"eta_sec":' \
             '"p50":' '"p99":' '"failure_causes":' '"truncated_logs":'; do
    if [[ ${line} != *"${key}"* ]]; then
      echo "FAIL: heartbeat line missing ${key}: ${line}" >&2
      exit 1
    fi
  done
done < "${WORK}/heartbeat.jsonl"
if ! tail -1 "${WORK}/heartbeat.jsonl" \
     | grep -q "\"devices_done\":${DEVICES}"; then
  echo "FAIL: final heartbeat does not cover the whole fleet" >&2
  exit 1
fi
echo "PASS: heartbeat lines conform to the documented schema"

# ---- foreign checkpoint guard ----------------------------------------------
if "${TOOL}" "${CONFIG[@]}" --seed-start 999 --checkpoint-out "${CKPT}" \
     --resume --out /dev/null 2> "${WORK}/foreign.err"; then
  echo "FAIL: resume accepted a checkpoint from a different population" >&2
  exit 1
fi
echo "PASS: foreign-population checkpoint was refused"
