#!/usr/bin/env bash
# Crash/resume smoke test: SIGKILL a checkpointing run mid-flight, resume it,
# and require the resumed run's report to be byte-identical to an
# uninterrupted reference run.
#
# Usage: scripts/crash_resume_smoke.sh [path/to/maxwe_sim]
set -u

TOOL=${1:-build/tools/maxwe_sim}
if [[ ! -x ${TOOL} ]]; then
  echo "error: ${TOOL} not found or not executable (build first)" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "${WORK}"' EXIT

# A run big enough to survive until the SIGKILL lands, checkpointing often.
CONFIG=(--mode stochastic --lines 2048 --regions 128 --endurance-mean 2000
        --spare maxwe --seed 11)
CKPT=${WORK}/crash.ckpt

echo "[1/3] reference run (uninterrupted)..."
if ! "${TOOL}" "${CONFIG[@]}" > "${WORK}/ref.out"; then
  echo "FAIL: reference run exited non-zero" >&2
  exit 1
fi

echo "[2/3] checkpointing run, SIGKILL once the first checkpoint lands..."
"${TOOL}" "${CONFIG[@]}" --checkpoint-out "${CKPT}" \
  --checkpoint-interval 20000 > "${WORK}/killed.out" 2>&1 &
PID=$!
for _ in $(seq 1 200); do
  [[ -f ${CKPT} ]] && break
  kill -0 "${PID}" 2>/dev/null || break
  sleep 0.05
done
if kill -KILL "${PID}" 2>/dev/null; then
  echo "      killed pid ${PID}"
else
  echo "      note: run finished before the kill landed (still a valid resume)"
fi
wait "${PID}" 2>/dev/null
if [[ ! -f ${CKPT} ]]; then
  echo "FAIL: no checkpoint was written before the process died" >&2
  exit 1
fi

# The atomic writer guarantees the checkpoint under its final name is whole;
# a temp file from the torn write may remain and must not be consulted.
echo "[3/3] resume from the checkpoint..."
if ! "${TOOL}" "${CONFIG[@]}" --checkpoint-out "${CKPT}" --resume \
     --checkpoint-interval 20000 > "${WORK}/resumed.out"; then
  echo "FAIL: resumed run exited non-zero" >&2
  exit 1
fi

if ! diff -u "${WORK}/ref.out" "${WORK}/resumed.out"; then
  echo "FAIL: resumed output differs from the uninterrupted reference" >&2
  exit 1
fi
echo "PASS: resumed run is byte-identical to the uninterrupted run"

# ---- sweep-level checkpoints: kill a seed sweep, resume the missing runs --
SWEEP=(--mode stochastic --lines 2048 --regions 128 --endurance-mean 2000
       --spare maxwe --seed 11 --seeds 4 --jobs 1)
SWEEP_CKPT=${WORK}/sweep.ckpt

echo "[sweep 1/3] reference sweep (uninterrupted)..."
if ! "${TOOL}" "${SWEEP[@]}" > "${WORK}/sweep_ref.out"; then
  echo "FAIL: reference sweep exited non-zero" >&2
  exit 1
fi

echo "[sweep 2/3] checkpointing sweep, SIGKILL after the first recorded run..."
"${TOOL}" "${SWEEP[@]}" --checkpoint-out "${SWEEP_CKPT}" \
  > "${WORK}/sweep_killed.out" 2>&1 &
PID=$!
for _ in $(seq 1 400); do
  [[ -f ${SWEEP_CKPT} ]] && break
  kill -0 "${PID}" 2>/dev/null || break
  sleep 0.05
done
kill -KILL "${PID}" 2>/dev/null
wait "${PID}" 2>/dev/null
if [[ ! -f ${SWEEP_CKPT} ]]; then
  echo "FAIL: no sweep checkpoint was written before the process died" >&2
  exit 1
fi

echo "[sweep 3/3] resume the sweep (recorded runs are skipped)..."
if ! "${TOOL}" "${SWEEP[@]}" --checkpoint-out "${SWEEP_CKPT}" --resume \
     > "${WORK}/sweep_resumed.out"; then
  echo "FAIL: resumed sweep exited non-zero" >&2
  exit 1
fi

if ! diff -u "${WORK}/sweep_ref.out" "${WORK}/sweep_resumed.out"; then
  echo "FAIL: resumed sweep differs from the uninterrupted reference" >&2
  exit 1
fi
echo "PASS: resumed sweep is byte-identical to the uninterrupted sweep"

# ---- flight recorder: the decision event log survives the SIGKILL and the
# resumed run's log is byte-identical to an uninterrupted reference. The
# reference checkpoints at the same cadence (checkpoint boundaries are
# recorded events), writing its checkpoints to a separate file.
EV_REF=${WORK}/events_ref.jsonl
EV_CRASH=${WORK}/events_crash.jsonl
EV_CKPT=${WORK}/events_crash.ckpt
EV_REF_CKPT=${WORK}/events_ref.ckpt

echo "[events 1/3] reference run with --events-out (uninterrupted)..."
if ! "${TOOL}" "${CONFIG[@]}" --events-out "${EV_REF}" \
     --checkpoint-out "${EV_REF_CKPT}" --checkpoint-interval 20000 \
     > "${WORK}/events_ref.out"; then
  echo "FAIL: reference events run exited non-zero" >&2
  exit 1
fi

echo "[events 2/3] recording run, SIGKILL once the first checkpoint lands..."
"${TOOL}" "${CONFIG[@]}" --events-out "${EV_CRASH}" \
  --checkpoint-out "${EV_CKPT}" --checkpoint-interval 20000 \
  > "${WORK}/events_killed.out" 2>&1 &
PID=$!
for _ in $(seq 1 200); do
  [[ -f ${EV_CKPT} ]] && break
  kill -0 "${PID}" 2>/dev/null || break
  sleep 0.05
done
if kill -KILL "${PID}" 2>/dev/null; then
  echo "      killed pid ${PID}"
else
  echo "      note: run finished before the kill landed (still a valid resume)"
fi
wait "${PID}" 2>/dev/null
if [[ ! -f ${EV_CKPT} ]]; then
  echo "FAIL: no checkpoint was written before the process died" >&2
  exit 1
fi

echo "[events 3/3] resume; the log rewinds to the checkpoint and replays..."
if ! "${TOOL}" "${CONFIG[@]}" --events-out "${EV_CRASH}" \
     --checkpoint-out "${EV_CKPT}" --checkpoint-interval 20000 --resume \
     > "${WORK}/events_resumed.out"; then
  echo "FAIL: resumed events run exited non-zero" >&2
  exit 1
fi

if ! cmp -s "${EV_REF}" "${EV_CRASH}"; then
  echo "FAIL: resumed event log differs from the uninterrupted reference" >&2
  diff <(tail -5 "${EV_REF}") <(tail -5 "${EV_CRASH}") >&2 || true
  exit 1
fi
echo "PASS: resumed event log is byte-identical to the uninterrupted run's"

# ---- cross-mode resume: a checkpoint written by the batched fast path is
# resumed with --no-fastpath and must land on the same report as the
# uninterrupted (fast-path) reference from step 1 — the fastpath flag is
# deliberately outside the checkpoint's config fingerprint.
FP_CKPT=${WORK}/fastpath.ckpt

echo "[fastpath 1/2] fast-path run, SIGKILL once the first checkpoint lands..."
"${TOOL}" "${CONFIG[@]}" --checkpoint-out "${FP_CKPT}" \
  --checkpoint-interval 20000 > "${WORK}/fp_killed.out" 2>&1 &
PID=$!
for _ in $(seq 1 200); do
  [[ -f ${FP_CKPT} ]] && break
  kill -0 "${PID}" 2>/dev/null || break
  sleep 0.05
done
if kill -KILL "${PID}" 2>/dev/null; then
  echo "      killed pid ${PID}"
else
  echo "      note: run finished before the kill landed (still a valid resume)"
fi
wait "${PID}" 2>/dev/null
if [[ ! -f ${FP_CKPT} ]]; then
  echo "FAIL: no checkpoint was written before the process died" >&2
  exit 1
fi

echo "[fastpath 2/2] resume with --no-fastpath (mode switch across resume)..."
if ! "${TOOL}" "${CONFIG[@]}" --checkpoint-out "${FP_CKPT}" --resume \
     --checkpoint-interval 20000 --no-fastpath > "${WORK}/fp_resumed.out"; then
  echo "FAIL: --no-fastpath resume exited non-zero" >&2
  exit 1
fi

if ! diff -u "${WORK}/ref.out" "${WORK}/fp_resumed.out"; then
  echo "FAIL: --no-fastpath resume differs from the fast-path reference" >&2
  exit 1
fi
echo "PASS: --no-fastpath resume is byte-identical to the fast-path reference"

# ---- stochastic sampling (counts path): zipf rides the multinomial counts
# path, whose RNG substream is checkpointed. A same-mode resume must be
# byte-identical to the uninterrupted run; a cross-mode resume (fastpath
# checkpoint finished with --no-fastpath) is only distribution-equivalent,
# so its gate is completion with a lifetime inside a 20% band. The reference
# checkpoints at the same cadence (to a separate file): checkpoint
# boundaries cap the sampling chunks, so the cadence is part of the
# trajectory being reproduced.
ZCONFIG=(--mode stochastic --lines 2048 --regions 128 --endurance-mean 2000
         --spare maxwe --attack zipf --seed 11)
Z_CKPT=${WORK}/zipf.ckpt
Z_REF_CKPT=${WORK}/zipf_ref.ckpt

echo "[zipf 1/3] reference zipf run (uninterrupted)..."
if ! "${TOOL}" "${ZCONFIG[@]}" --checkpoint-out "${Z_REF_CKPT}" \
     --checkpoint-interval 20000 > "${WORK}/zipf_ref.out"; then
  echo "FAIL: zipf reference run exited non-zero" >&2
  exit 1
fi

echo "[zipf 2/3] checkpointing zipf run, SIGKILL once a checkpoint lands..."
"${TOOL}" "${ZCONFIG[@]}" --checkpoint-out "${Z_CKPT}" \
  --checkpoint-interval 20000 > "${WORK}/zipf_killed.out" 2>&1 &
PID=$!
for _ in $(seq 1 200); do
  [[ -f ${Z_CKPT} ]] && break
  kill -0 "${PID}" 2>/dev/null || break
  sleep 0.05
done
if kill -KILL "${PID}" 2>/dev/null; then
  echo "      killed pid ${PID}"
else
  echo "      note: run finished before the kill landed (still a valid resume)"
fi
wait "${PID}" 2>/dev/null
if [[ ! -f ${Z_CKPT} ]]; then
  echo "FAIL: no checkpoint was written before the process died" >&2
  exit 1
fi

echo "[zipf 3/3] same-mode resume (must be byte-identical)..."
if ! "${TOOL}" "${ZCONFIG[@]}" --checkpoint-out "${Z_CKPT}" --resume \
     --checkpoint-interval 20000 > "${WORK}/zipf_resumed.out"; then
  echo "FAIL: resumed zipf run exited non-zero" >&2
  exit 1
fi
if ! diff -u "${WORK}/zipf_ref.out" "${WORK}/zipf_resumed.out"; then
  echo "FAIL: resumed zipf run differs from the uninterrupted reference" >&2
  exit 1
fi
echo "PASS: same-mode zipf resume is byte-identical to the reference"

echo "[zipf cross] finish the same checkpoint with --no-fastpath..."
if ! "${TOOL}" "${ZCONFIG[@]}" --checkpoint-out "${Z_CKPT}" --resume \
     --checkpoint-interval 20000 --no-fastpath \
     > "${WORK}/zipf_cross.out"; then
  echo "FAIL: cross-mode zipf resume exited non-zero" >&2
  exit 1
fi
UW_REF=$(awk '/user writes:/ { print $3; exit }' "${WORK}/zipf_ref.out")
UW_CROSS=$(awk '/user writes:/ { print $3; exit }' "${WORK}/zipf_cross.out")
if ! awk -v f="${UW_CROSS}" -v s="${UW_REF}" \
    'BEGIN { r = f / s; exit !(r >= 0.8 && r <= 1.2) }'; then
  echo "FAIL: cross-mode zipf lifetime ${UW_CROSS} vs reference ${UW_REF}" \
       "outside the 20% distribution-equivalence band" >&2
  exit 1
fi
echo "PASS: cross-mode zipf resume completed (${UW_CROSS} vs ${UW_REF} in band)"
