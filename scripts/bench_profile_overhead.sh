#!/usr/bin/env bash
# Self-profiler overhead + attribution gate.
#
# The profiler's contract is "always-on cheap": scoped phase accumulators
# and counters on the hottest loops must cost <= 2% wall time. This script
# measures that on the two hot paths the profiler instruments most densely:
#
#   1. A UAA spare-fraction sweep (run-length batched fast path: the
#      engine.batch.* spans and batch counters).
#   2. A zipf stochastic run (multinomial counts path: engine.counts.*
#      spans, resolve-cache counters, chunk histograms).
#
# Each config runs REPS times with and without --profile-out; the min-of-N
# pair is compared (min is the right statistic for a noise gate — the
# fastest run is the one with the least scheduler interference). GATING:
# profiled min <= plain min * 1.02 + 0.05s absolute slack for
# timer-resolution noise on sub-second runs.
#
# Also GATING: the profiler must account for where the time went — the
# "attributed:" line maxwe_profile prints (time in phases with no observed
# ancestor / wall time) must be >= 90% for a stochastic run and for a
# --jobs 1 fleet campaign. Timings land in BENCH_profile_overhead.json.
#
# Usage: scripts/bench_profile_overhead.sh [build-dir] [output-json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_profile_overhead.json}"

SIM="$BUILD_DIR/tools/maxwe_sim"
FLEET="$BUILD_DIR/tools/fleet_sim"
PROFILE="$BUILD_DIR/tools/maxwe_profile"
for bin in "$SIM" "$FLEET" "$PROFILE"; do
  if [[ ! -x "$bin" ]]; then
    echo "build first: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR" >&2
    exit 1
  fi
done

REPS=5
OVERHEAD_FRAC=1.02   # gate: profiled <= plain * this ...
ABS_SLACK=0.05       # ... plus this many seconds of absolute slack
MIN_ATTRIBUTED=90.0  # gate: attributed wall-time percent, both profiles

now_ns() { date +%s%N; }

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# run_reps <name> [command...]: run REPS times, echo min elapsed seconds.
run_reps() {
  local name="$1" best="" t0 t1 t
  shift
  for _ in $(seq "$REPS"); do
    t0="$(now_ns)"
    "$@" > /dev/null
    t1="$(now_ns)"
    t="$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }')"
    best="$(awk -v a="${best:-$t}" -v b="$t" \
      'BEGIN { printf "%.3f", (a < b) ? a : b }')"
  done
  echo "$best"
}

gate_overhead() {  # gate_overhead <name> <plain-s> <profiled-s>
  local name="$1" plain="$2" profiled="$3"
  if ! awk -v p="$plain" -v q="$profiled" -v f="$OVERHEAD_FRAC" \
      -v s="$ABS_SLACK" 'BEGIN { exit !(q <= p * f + s) }'; then
    echo "FAIL: $name profiled ${profiled}s vs plain ${plain}s" \
         "exceeds ${OVERHEAD_FRAC}x + ${ABS_SLACK}s" >&2
    exit 1
  fi
}

attributed_pct() {  # attributed_pct <profile-json>; echoes the percent
  "$PROFILE" --profile "$1" \
    | awk '/^attributed: / { sub("%", "", $2); print $2; exit }'
}

gate_attribution() {  # gate_attribution <name> <profile-json>
  local name="$1" pct
  pct="$(attributed_pct "$2")"
  if [[ -z "$pct" ]]; then
    echo "FAIL: $name profile has no attributed line" >&2
    exit 1
  fi
  if ! awk -v p="$pct" -v m="$MIN_ATTRIBUTED" 'BEGIN { exit !(p >= m) }'; then
    echo "FAIL: $name attribution ${pct}% < ${MIN_ATTRIBUTED}%" >&2
    exit 1
  fi
  echo "$pct"
}

# ---- 1. UAA spare-fraction sweep (batched fast path) -----------------------
UAA_FRACTIONS=(0.10 0.20 0.30)
UAA_ARGS=(--mode stochastic --lines 4096 --regions 256
          --endurance-mean 30000 --attack uaa --wl tlsr --spare maxwe
          --seed 11)

run_uaa_sweep() {  # run_uaa_sweep [extra args...]
  local frac
  for frac in "${UAA_FRACTIONS[@]}"; do
    "$SIM" "${UAA_ARGS[@]}" --spare-fraction "$frac" "$@"
  done
}

echo "== UAA sweep, plain (min of $REPS)"
T_UAA_PLAIN="$(run_reps uaa_plain run_uaa_sweep)"
echo "   ${T_UAA_PLAIN}s"
echo "== UAA sweep, --profile-out (min of $REPS)"
T_UAA_PROF="$(run_reps uaa_prof run_uaa_sweep \
  --profile-out "$workdir/uaa.profile.json")"
echo "   ${T_UAA_PROF}s"
gate_overhead "uaa sweep" "$T_UAA_PLAIN" "$T_UAA_PROF"
UAA_OVERHEAD="$(awk -v p="$T_UAA_PLAIN" -v q="$T_UAA_PROF" \
  'BEGIN { printf "%.2f", (p > 0) ? 100 * (q - p) / p : 0 }')"
echo "== uaa overhead ${UAA_OVERHEAD}% (gate: <= 2% + ${ABS_SLACK}s slack)"

# ---- 2. zipf stochastic run (multinomial counts path) ----------------------
ZIPF_ARGS=(--mode stochastic --lines 65536 --regions 1024
           --endurance-mean 300000 --attack zipf --wl none --spare maxwe
           --seed 11)

echo "== zipf counts run, plain (min of $REPS)"
T_ZIPF_PLAIN="$(run_reps zipf_plain "$SIM" "${ZIPF_ARGS[@]}")"
echo "   ${T_ZIPF_PLAIN}s"
echo "== zipf counts run, --profile-out (min of $REPS)"
T_ZIPF_PROF="$(run_reps zipf_prof "$SIM" "${ZIPF_ARGS[@]}" \
  --profile-out "$workdir/zipf.profile.json")"
echo "   ${T_ZIPF_PROF}s"
gate_overhead "zipf run" "$T_ZIPF_PLAIN" "$T_ZIPF_PROF"
ZIPF_OVERHEAD="$(awk -v p="$T_ZIPF_PLAIN" -v q="$T_ZIPF_PROF" \
  'BEGIN { printf "%.2f", (p > 0) ? 100 * (q - p) / p : 0 }')"
echo "== zipf overhead ${ZIPF_OVERHEAD}% (gate: <= 2% + ${ABS_SLACK}s slack)"

# ---- 3. attribution gates --------------------------------------------------
# The profiled zipf run above left its profile in the workdir; a fleet
# campaign at --jobs 1 (so shard spans cover the whole section) provides
# the fleet-side profile.
"$FLEET" --devices 64 --shard-size 16 --jobs 1 --lines 512 --regions 32 \
  --endurance-mean 500 --spare maxwe \
  --out "$workdir/fleet.json" \
  --profile-out "$workdir/fleet.profile.json" > /dev/null

ZIPF_ATTR="$(gate_attribution "zipf run" "$workdir/zipf.profile.json")"
echo "== zipf attribution ${ZIPF_ATTR}% (gate: >= ${MIN_ATTRIBUTED}%)"
FLEET_ATTR="$(gate_attribution "fleet campaign" "$workdir/fleet.profile.json")"
echo "== fleet attribution ${FLEET_ATTR}% (gate: >= ${MIN_ATTRIBUTED}%)"

cat > "$OUT_JSON" <<EOF
{
  "benchmark": "profiler_overhead",
  "reps": $REPS,
  "gate": "profiled <= plain * $OVERHEAD_FRAC + ${ABS_SLACK}s; attributed >= ${MIN_ATTRIBUTED}%",
  "uaa_sweep": {
    "config": "stochastic 4096x256 uaa tlsr maxwe, spare fractions [${UAA_FRACTIONS[*]}]",
    "plain_seconds": $T_UAA_PLAIN,
    "profiled_seconds": $T_UAA_PROF,
    "overhead_percent": $UAA_OVERHEAD
  },
  "zipf_counts": {
    "config": "stochastic 65536x1024 zipf wl=none maxwe endurance 3e5",
    "plain_seconds": $T_ZIPF_PLAIN,
    "profiled_seconds": $T_ZIPF_PROF,
    "overhead_percent": $ZIPF_OVERHEAD
  },
  "attribution": {
    "stochastic_percent": $ZIPF_ATTR,
    "fleet_percent": $FLEET_ATTR,
    "fleet_config": "64 devices, shard 16, jobs 1, 512x32 maxwe"
  },
  "gates_passed": true
}
EOF

echo "== wrote $OUT_JSON"
