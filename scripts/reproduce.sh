#!/usr/bin/env bash
# Regenerate every figure/table reproduction and archive the outputs.
#
# Usage: scripts/reproduce.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "build first: cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$RESULTS_DIR"

for bench in "$BUILD_DIR"/bench/bench_*; do
  [[ -x "$bench" && -f "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "== $name"
  "$bench" | tee "$RESULTS_DIR/$name.txt"
  echo
done

# CSV variants for the figure benches (plot-ready).
for fig in bench_fig5_analytic_surface bench_fig6_spare_sweep \
           bench_fig7_swr_sweep bench_fig8_bpa_comparison \
           bench_tbl_uaa_lifetime; do
  if [[ -x "$BUILD_DIR/bench/$fig" ]]; then
    "$BUILD_DIR/bench/$fig" --csv > "$RESULTS_DIR/$fig.csv" || true
  fi
done

echo "results archived in $RESULTS_DIR/"
